// Shared plumbing for the experiment harnesses: every bench binary
// reproduces one table/figure of the paper, prints it as an aligned ASCII
// table, and mirrors it to a CSV file for offline plotting.
#pragma once

#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_core/backend.hpp"
#include "bench_core/report.hpp"
#include "bench_core/sim_backend.hpp"
#include "bench_core/sweep.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "model/bouncing_model.hpp"
#include "model/params.hpp"
#include "sim/config.hpp"

namespace am::bench_util {

/// Wall clock of the bench run, pinned when add_common_flags() runs (i.e. at
/// program start); emit() reads it back for the report's wall_time_s.
inline std::chrono::steady_clock::time_point& start_time() {
  static auto t0 = std::chrono::steady_clock::now();
  return t0;
}

/// Registers the flags every experiment binary shares.
inline void add_common_flags(CliParser& cli) {
  cli.add_flag("backend",
               "execution backend: sim:xeon | sim:knl | sim:test | hw | auto",
               "sim:xeon");
  cli.add_flag("csv", "write the table as CSV to this path (empty = skip)",
               "");
  cli.add_flag("threads", "comma-separated thread counts (empty = default sweep)",
               "", CliParser::FlagKind::kIntList);
  cli.add_flag("json-out",
               "write a JSON run report (schema am-run-report/1) with "
               "per-thread stats, hot lines and epoch time-series to this path",
               "");
  cli.add_flag("trace-out",
               "stream a Chrome trace-event JSON file (load in Perfetto / "
               "chrome://tracing) covering every simulated run; sim backends "
               "only",
               "");
  cli.add_flag("epoch-cycles",
               "epoch sampler window in cycles; 0 = off (--json-out defaults "
               "it to measure/32)",
               "0", CliParser::FlagKind::kInt);
  cli.add_flag("jobs",
               "parallel sweep workers; 0 = host core count, 1 = serial. "
               "Results are byte-identical for every value; hardware "
               "backends force 1; conflicts with --trace-out when > 1",
               "0", CliParser::FlagKind::kInt);
  cli.add_flag("sweep-cache",
               "directory of the on-disk sweep result cache; re-runs load "
               "already-computed points bit-exactly (empty = off)",
               "");
  cli.add_flag("base-seed",
               "base seed for the sweep's per-point seed derivation",
               "1", CliParser::FlagKind::kUint64);
  start_time();
}

/// Flag combinations that cannot be honored together (currently: an
/// explicit --jobs > 1 with --trace-out — see bench::jobs_trace_conflict).
/// Returns an error message, or "" when the flags are coherent.
inline std::string common_flag_conflict(const CliParser& cli) {
  if (!cli.has("jobs")) return "";  // default 0 = auto, serialized by trace
  return bench::jobs_trace_conflict(cli.get_int("jobs"),
                                    !cli.get("trace-out").empty());
}

/// parse() plus cross-flag validation; every bench main funnels through
/// this so conflicting flags fail before any simulation starts.
inline bool parse_common(CliParser& cli, int argc, const char* const* argv) {
  if (!cli.parse(argc, argv)) return false;
  if (const std::string err = common_flag_conflict(cli); !err.empty()) {
    std::cerr << err << "\n";
    return false;
  }
  return true;
}

/// Applies --trace-out / --epoch-cycles / --json-out instrumentation to a
/// backend. Observability is a simulator feature: on the hardware backend
/// only the report itself applies, and a requested trace warns.
inline void apply_obs(const CliParser& cli, bench::ExecutionBackend& backend) {
  const bool want_report = !cli.get("json-out").empty();
  const std::string trace_path = cli.get("trace-out");
  auto* sim = dynamic_cast<bench::SimBackend*>(&backend);
  if (sim == nullptr) {
    if (!trace_path.empty()) {
      std::cerr << "--trace-out: the hardware backend has no coherence "
                   "trace; ignored\n";
    }
    return;
  }
  auto window = static_cast<sim::Cycles>(cli.get_int("epoch-cycles"));
  if (window == 0 && want_report) {
    window = sim->options().measure_cycles / 32;
  }
  sim->set_epoch_cycles(window);
  sim->set_line_profiling(want_report);
  if (!trace_path.empty() && !sim->set_trace_file(trace_path)) {
    std::cerr << "failed to open trace file " << trace_path << "\n";
  }
}

/// Builds the backend named by --backend, instrumented per the obs flags.
inline std::unique_ptr<bench::ExecutionBackend> backend_from(
    const CliParser& cli) {
  auto backend = bench::make_backend(cli.get("backend"));
  apply_obs(cli, *backend);
  return backend;
}

/// Uninstrumented backend for interrogating the grid shape (machine name,
/// max_threads) before submitting points to a sweep. Never opens trace
/// files, so it can coexist with sweep_from() on the same flags.
inline std::unique_ptr<bench::ExecutionBackend> probe_backend(
    const CliParser& cli) {
  return bench::make_backend(cli.get("backend"));
}

/// Applies --epoch-cycles / --json-out instrumentation (and optionally a
/// shared trace sink) to a sim backend built inside a sweep point or task.
inline void apply_task_obs(const CliParser& cli, obs::TraceSink* sink,
                           bench::SimBackend& sim) {
  const bool want_report = !cli.get("json-out").empty();
  auto window = static_cast<sim::Cycles>(cli.get_int("epoch-cycles"));
  if (window == 0 && want_report) {
    window = sim.options().measure_cycles / 32;
  }
  sim.set_epoch_cycles(window);
  sim.set_line_profiling(want_report);
  if (sink != nullptr) sim.set_sink(sink);
}

/// A bench binary's sweep: the engine plus the trace sink shared by every
/// point when --trace-out is set (tracing forces --jobs=1, so the single
/// sink is never written concurrently).
struct Sweep {
  std::unique_ptr<obs::ChromeTraceFileSink> trace;
  std::unique_ptr<bench::SweepEngine> engine;
};

/// Builds the sweep engine for --backend/--jobs/--sweep-cache/--base-seed.
/// Every converted bench submits its grid through this; --jobs=1 runs the
/// identical seeds/points serially, so reports match at any width.
inline Sweep sweep_from(const CliParser& cli) {
  Sweep s;
  const std::string spec = cli.get("backend");
  const bool is_hw =
      spec == "hw" ||
      (spec == "auto" && std::thread::hardware_concurrency() >= 8);
  bool serial = false;
  obs::TraceSink* sink = nullptr;
  if (is_hw) {
    // Hardware measurements own the host's cores; concurrent points would
    // measure each other.
    serial = true;
  } else if (const std::string trace_path = cli.get("trace-out");
             !trace_path.empty()) {
    s.trace = std::make_unique<obs::ChromeTraceFileSink>(trace_path);
    if (!s.trace->ok()) {
      std::cerr << "failed to open trace file " << trace_path << "\n";
      s.trace.reset();
    } else {
      sink = s.trace.get();
      serial = true;  // one trace stream
    }
  }
  bench::SweepOptions opts;
  opts.jobs = serial ? 1u
                     : static_cast<unsigned>(
                           std::max<std::int64_t>(0, cli.get_int("jobs")));
  opts.cache_dir = cli.get("sweep-cache");
  opts.base_seed = cli.get_uint64("base-seed");
  s.engine = std::make_unique<bench::SweepEngine>(
      [cli_copy = cli, sink](std::uint64_t seed) {
        auto backend = bench::make_backend(cli_copy.get("backend"), seed);
        if (auto* sim = dynamic_cast<bench::SimBackend*>(backend.get())) {
          apply_task_obs(cli_copy, sink, *sim);
        }
        return backend;
      },
      opts);
  return s;
}

/// Analytic model parameters for a sim backend spec; for "hw" this returns
/// the Xeon skeleton (structure only) — pair it with calibration.
inline model::ModelParams params_for(const std::string& backend_spec) {
  if (backend_spec.rfind("sim:", 0) == 0) {
    return model::ModelParams::from_machine(
        sim::preset_by_name(backend_spec.substr(4)));
  }
  return model::ModelParams::from_machine(sim::xeon_e5_2x18());
}

/// Default thread sweep for a backend: powers-of-two-ish points up to the
/// machine's core count (the x-axis of the paper's figures).
inline std::vector<std::uint32_t> default_thread_sweep(std::uint32_t max) {
  std::vector<std::uint32_t> sweep;
  for (std::uint32_t n : {1u, 2u, 4u, 8u, 12u, 16u, 24u, 32u, 36u, 48u, 64u}) {
    if (n <= max) sweep.push_back(n);
  }
  if (sweep.empty() || sweep.back() != max) sweep.push_back(max);
  return sweep;
}

/// Thread sweep from --threads, falling back to the default.
inline std::vector<std::uint32_t> thread_sweep(const CliParser& cli,
                                               std::uint32_t max) {
  if (!cli.has("threads")) return default_thread_sweep(max);
  std::vector<std::uint32_t> sweep;
  for (auto v : cli.get_int_list("threads")) {
    if (v >= 1 && static_cast<std::uint32_t>(v) <= max) {
      sweep.push_back(static_cast<std::uint32_t>(v));
    }
  }
  return sweep.empty() ? default_thread_sweep(max) : sweep;
}

/// Prints the table, mirrors it to --csv, and writes the --json-out run
/// report. The report serializes every workload the binary executed through
/// the backend seam (bench::run_log()) alongside the rendered table, so no
/// bench needs to thread its measurements here explicitly. @p sweep, when
/// given, adds a pool/cache summary line to stdout (never to the report —
/// reports stay byte-identical across --jobs and cache temperature).
inline void emit(const CliParser& cli, const std::string& title,
                 const Table& table,
                 const bench::SweepEngine* sweep = nullptr) {
  std::cout << "\n== " << title << " ==\n" << table;
  if (sweep != nullptr) {
    std::cout << "(sweep: " << sweep->executed_points() << " simulated, "
              << sweep->cache_hits() << " cache hits, jobs="
              << sweep->jobs() << ")\n";
  }
  const std::string path = cli.get("csv");
  if (!path.empty()) {
    if (table.write_csv(path)) {
      std::cout << "(csv written to " << path << ")\n";
    } else {
      std::cerr << "failed to write csv to " << path << "\n";
    }
  }
  const std::string json_path = cli.get("json-out");
  if (!json_path.empty()) {
    const auto& runs = bench::run_log();
    bench::ReportMeta meta;
    meta.bench = cli.program_name();
    meta.title = title;
    meta.backend = cli.get("backend");
    meta.machine = runs.empty() ? "" : runs.back().run.machine;
    meta.command = cli.command_line();
    meta.wall_time_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_time())
                           .count();
    if (bench::write_run_report_file(json_path, meta, &table, runs)) {
      std::cout << "(json report written to " << json_path << ", "
                << runs.size() << " runs)\n";
    } else {
      std::cerr << "failed to write json report to " << json_path << "\n";
    }
  }
}

}  // namespace am::bench_util
