// Shared plumbing for the experiment harnesses: every bench binary
// reproduces one table/figure of the paper, prints it as an aligned ASCII
// table, and mirrors it to a CSV file for offline plotting.
#pragma once

#include <chrono>
#include <csignal>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_core/backend.hpp"
#include "bench_core/report.hpp"
#include "bench_core/sim_backend.hpp"
#include "bench_core/sweep.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "model/bouncing_model.hpp"
#include "model/params.hpp"
#include "sim/config.hpp"

namespace am::bench_util {

/// Wall clock of the bench run, pinned when add_common_flags() runs (i.e. at
/// program start); emit() reads it back for the report's wall_time_s.
inline std::chrono::steady_clock::time_point& start_time() {
  static auto t0 = std::chrono::steady_clock::now();
  return t0;
}

/// Registers the flags every experiment binary shares.
inline void add_common_flags(CliParser& cli) {
  cli.add_flag("backend",
               "execution backend: sim:xeon | sim:knl | sim:test (append "
               ":tso for the weak-memory model, e.g. sim:xeon:tso) | hw | "
               "auto",
               "sim:xeon");
  cli.add_flag("csv", "write the table as CSV to this path (empty = skip)",
               "");
  cli.add_flag("threads", "comma-separated thread counts (empty = default sweep)",
               "", CliParser::FlagKind::kIntList);
  cli.add_flag("json-out",
               "write a JSON run report (schema am-run-report/1) with "
               "per-thread stats, hot lines and epoch time-series to this path",
               "");
  cli.add_flag("trace-out",
               "stream a Chrome trace-event JSON file (load in Perfetto / "
               "chrome://tracing) covering every simulated run; sim backends "
               "only",
               "");
  cli.add_flag("epoch-cycles",
               "epoch sampler window in cycles; 0 = off (--json-out defaults "
               "it to measure/32)",
               "0", CliParser::FlagKind::kInt);
  cli.add_flag("jobs",
               "parallel sweep workers; 0 = host core count, 1 = serial. "
               "Results are byte-identical for every value; hardware "
               "backends force 1; conflicts with --trace-out when > 1",
               "0", CliParser::FlagKind::kInt);
  cli.add_flag("sweep-cache",
               "directory of the on-disk sweep result cache; re-runs load "
               "already-computed points bit-exactly (empty = off)",
               "");
  cli.add_flag("base-seed",
               "base seed for the sweep's per-point seed derivation",
               "1", CliParser::FlagKind::kUint64);
  cli.add_flag("sweep-journal",
               "crash-safe journal of completed sweep points; a rerun after "
               "SIGKILL/SIGINT skips journaled points even with the result "
               "cache off (empty = off)",
               "");
  cli.add_flag("max-point-cycles",
               "per-point watchdog budget in simulated cycles; 0 = auto "
               "(64x the warmup+measure window), negative = no watchdog",
               "0", CliParser::FlagKind::kInt);
  cli.add_flag("strict",
               "exit non-zero when any sweep point fails (default: print "
               "degraded rows and exit 0 unless every point failed)",
               "false", CliParser::FlagKind::kBool);
  cli.add_flag("replay-point",
               "re-execute exactly this sweep submission index, serially, "
               "bypassing cache and journal (-1 = off); printed in the "
               "replay command of every failed point",
               "-1", CliParser::FlagKind::kInt);
  start_time();
}

/// Flag combinations that cannot be honored together (currently: an
/// explicit --jobs > 1 with --trace-out — see bench::jobs_trace_conflict).
/// Returns an error message, or "" when the flags are coherent.
inline std::string common_flag_conflict(const CliParser& cli) {
  if (!cli.has("jobs")) return "";  // default 0 = auto, serialized by trace
  return bench::jobs_trace_conflict(cli.get_int("jobs"),
                                    !cli.get("trace-out").empty());
}

/// parse() plus cross-flag validation; every bench main funnels through
/// this so conflicting flags fail before any simulation starts.
inline bool parse_common(CliParser& cli, int argc, const char* const* argv) {
  if (!cli.parse(argc, argv)) return false;
  if (const std::string err = common_flag_conflict(cli); !err.empty()) {
    std::cerr << err << "\n";
    return false;
  }
  return true;
}

/// Applies --trace-out / --epoch-cycles / --json-out instrumentation to a
/// backend. Observability is a simulator feature: on the hardware backend
/// only the report itself applies, and a requested trace warns.
inline void apply_obs(const CliParser& cli, bench::ExecutionBackend& backend) {
  const bool want_report = !cli.get("json-out").empty();
  const std::string trace_path = cli.get("trace-out");
  auto* sim = dynamic_cast<bench::SimBackend*>(&backend);
  if (sim == nullptr) {
    if (!trace_path.empty()) {
      std::cerr << "--trace-out: the hardware backend has no coherence "
                   "trace; ignored\n";
    }
    return;
  }
  auto window = static_cast<sim::Cycles>(cli.get_int("epoch-cycles"));
  if (window == 0 && want_report) {
    window = sim->options().measure_cycles / 32;
  }
  sim->set_epoch_cycles(window);
  sim->set_line_profiling(want_report);
  if (!trace_path.empty() && !sim->set_trace_file(trace_path)) {
    std::cerr << "failed to open trace file " << trace_path << "\n";
  }
}

/// Builds the backend named by --backend, instrumented per the obs flags.
inline std::unique_ptr<bench::ExecutionBackend> backend_from(
    const CliParser& cli) {
  auto backend = bench::make_backend(cli.get("backend"));
  apply_obs(cli, *backend);
  return backend;
}

/// Uninstrumented backend for interrogating the grid shape (machine name,
/// max_threads) before submitting points to a sweep. Never opens trace
/// files, so it can coexist with sweep_from() on the same flags.
inline std::unique_ptr<bench::ExecutionBackend> probe_backend(
    const CliParser& cli) {
  return bench::make_backend(cli.get("backend"));
}

/// --max-point-cycles resolved against a backend's measurement windows.
/// 0 picks a budget generous enough that only a genuine runaway trips it;
/// the progress watchdog (livelock detector) rides along whenever the
/// cycle budget is armed.
inline sim::WatchdogConfig watchdog_from(const CliParser& cli,
                                         const bench::SimBackendOptions& o) {
  sim::WatchdogConfig wd;
  const std::int64_t v = cli.get_int("max-point-cycles");
  if (v < 0) return wd;  // watchdog off
  wd.max_cycles = v > 0 ? static_cast<sim::Cycles>(v)
                        : 64 * (o.warmup_cycles + o.measure_cycles);
  wd.progress_events = 1'000'000;
  return wd;
}

/// Applies --epoch-cycles / --json-out / --max-point-cycles instrumentation
/// (and optionally a shared trace sink) to a sim backend built inside a
/// sweep point or task.
inline void apply_task_obs(const CliParser& cli, obs::TraceSink* sink,
                           bench::SimBackend& sim) {
  const bool want_report = !cli.get("json-out").empty();
  auto window = static_cast<sim::Cycles>(cli.get_int("epoch-cycles"));
  if (window == 0 && want_report) {
    window = sim.options().measure_cycles / 32;
  }
  sim.set_epoch_cycles(window);
  sim.set_line_profiling(want_report);
  sim.set_watchdog(watchdog_from(cli, sim.options()));
  if (sink != nullptr) sim.set_sink(sink);
}

/// A bench binary's sweep: the engine plus the trace sink shared by every
/// point when --trace-out is set (tracing forces --jobs=1, so the single
/// sink is never written concurrently).
struct Sweep {
  std::unique_ptr<obs::ChromeTraceFileSink> trace;
  std::unique_ptr<bench::SweepEngine> engine;
};

/// Builds the sweep engine for --backend/--jobs/--sweep-cache/--base-seed.
/// Every converted bench submits its grid through this; --jobs=1 runs the
/// identical seeds/points serially, so reports match at any width.
inline Sweep sweep_from(const CliParser& cli) {
  Sweep s;
  const std::string spec = cli.get("backend");
  const bool is_hw =
      spec == "hw" ||
      (spec == "auto" && std::thread::hardware_concurrency() >= 8);
  bool serial = false;
  obs::TraceSink* sink = nullptr;
  if (is_hw) {
    // Hardware measurements own the host's cores; concurrent points would
    // measure each other.
    serial = true;
  } else if (const std::string trace_path = cli.get("trace-out");
             !trace_path.empty()) {
    s.trace = std::make_unique<obs::ChromeTraceFileSink>(trace_path);
    if (!s.trace->ok()) {
      std::cerr << "failed to open trace file " << trace_path << "\n";
      s.trace.reset();
    } else {
      sink = s.trace.get();
      serial = true;  // one trace stream
    }
  }
  bench::SweepOptions opts;
  opts.replay_point = cli.get_int("replay-point");
  if (opts.replay_point >= 0) serial = true;  // replay is a serial debug run
  opts.jobs = serial ? 1u
                     : static_cast<unsigned>(
                           std::max<std::int64_t>(0, cli.get_int("jobs")));
  opts.cache_dir = cli.get("sweep-cache");
  opts.base_seed = cli.get_uint64("base-seed");
  opts.journal_path = cli.get("sweep-journal");
  // Ctrl-C cancels cooperatively: in-flight points finish, unstarted ones
  // surface as cancelled rows, the journal and partial report still land,
  // and finish() exits 130.
  std::signal(SIGINT, [](int) { bench::SweepEngine::request_cancel(); });
  s.engine = std::make_unique<bench::SweepEngine>(
      [cli_copy = cli, sink](std::uint64_t seed) {
        auto backend = bench::make_backend(cli_copy.get("backend"), seed);
        if (auto* sim = dynamic_cast<bench::SimBackend*>(backend.get())) {
          apply_task_obs(cli_copy, sink, *sim);
        }
        return backend;
      },
      opts);
  return s;
}

/// Analytic model parameters for a sim backend spec; for "hw" this returns
/// the Xeon skeleton (structure only) — pair it with calibration.
inline model::ModelParams params_for(const std::string& backend_spec) {
  if (backend_spec.rfind("sim:", 0) == 0) {
    return model::ModelParams::from_machine(
        sim::preset_by_name(backend_spec.substr(4)));
  }
  return model::ModelParams::from_machine(sim::xeon_e5_2x18());
}

/// Default thread sweep for a backend: powers-of-two-ish points up to the
/// machine's core count (the x-axis of the paper's figures).
inline std::vector<std::uint32_t> default_thread_sweep(std::uint32_t max) {
  std::vector<std::uint32_t> sweep;
  for (std::uint32_t n : {1u, 2u, 4u, 8u, 12u, 16u, 24u, 32u, 36u, 48u, 64u}) {
    if (n <= max) sweep.push_back(n);
  }
  if (sweep.empty() || sweep.back() != max) sweep.push_back(max);
  return sweep;
}

/// Thread sweep from --threads, falling back to the default.
inline std::vector<std::uint32_t> thread_sweep(const CliParser& cli,
                                               std::uint32_t max) {
  if (!cli.has("threads")) return default_thread_sweep(max);
  std::vector<std::uint32_t> sweep;
  for (auto v : cli.get_int_list("threads")) {
    if (v >= 1 && static_cast<std::uint32_t>(v) <= max) {
      sweep.push_back(static_cast<std::uint32_t>(v));
    }
  }
  return sweep.empty() ? default_thread_sweep(max) : sweep;
}

/// The command that re-executes sweep point @p index in isolation: the
/// original command line with the execution-shape flags (--jobs,
/// --replay-point, caches, journal, report/trace outputs) stripped and
/// `--jobs=1 --replay-point=N` appended. Deterministic for a given command,
/// so reports stay byte-identical across --jobs and cache temperature.
inline std::string replay_command(const CliParser& cli, std::size_t index) {
  static constexpr const char* kStrip[] = {
      "--jobs",       "--sweep-cache", "--sweep-journal", "--replay-point",
      "--json-out",   "--csv",         "--trace-out",
  };
  std::istringstream in(cli.command_line());
  std::string tok;
  std::string out;
  bool skip_value = false;
  while (in >> tok) {
    if (skip_value) {  // the detached value of a stripped "--flag value"
      skip_value = false;
      continue;
    }
    bool strip = false;
    for (const char* flag : kStrip) {
      const std::string f(flag);
      if (tok == f) {
        strip = true;
        skip_value = true;  // value is the next token
        break;
      }
      if (tok.rfind(f + "=", 0) == 0) {
        strip = true;
        break;
      }
    }
    if (strip) continue;
    if (!out.empty()) out += ' ';
    out += tok;
  }
  return out + " --jobs=1 --replay-point=" + std::to_string(index);
}

/// Table row for a point that produced no measurement: the label column(s)
/// survive, the status lands in the first free column, the rest degrade to
/// "-". The sweep keeps every surviving row; only the failed point is dark.
inline std::vector<std::string> degraded_row(const Table& table,
                                             std::vector<std::string> labels,
                                             const bench::PointOutcome& out) {
  std::vector<std::string> cells = std::move(labels);
  if (cells.size() < table.column_count()) {
    // kSkipped is replay-mode bookkeeping, not a failure.
    cells.push_back(out.status == bench::PointStatus::kSkipped
                        ? "skipped"
                        : std::string("FAILED:") +
                              bench::to_string(out.status));
  }
  while (cells.size() < table.column_count()) cells.emplace_back("-");
  cells.resize(table.column_count());
  return cells;
}

/// Report-facing summary of a drained sweep (the "sweep" section of
/// am-run-report/1), including a replay command per failed point.
inline bench::SweepReport sweep_report(const CliParser& cli,
                                       const bench::SweepEngine& engine) {
  bench::SweepReport r;
  r.points = engine.submitted_points();
  r.ok = engine.ok_points();
  r.cache_io_errors = engine.cache_io_errors();
  r.quarantined_files = engine.quarantined_files();
  for (const auto& f : engine.failed_points()) {
    bench::SweepReport::Failure out;
    out.index = f.index;
    out.status = bench::to_string(f.status);
    out.seed = f.seed;
    out.message = f.message;
    out.replay = replay_command(cli, f.index);
    out.workload = f.is_task ? "task" : f.config.describe();
    r.failures.push_back(std::move(out));
  }
  return r;
}

/// Exit-code policy for a drained sweep: 130 after SIGINT (shell
/// convention), 1 when every point failed or when --strict and anything
/// failed, 0 otherwise — a degraded sweep that still measured something is
/// a success by default.
inline int sweep_exit_code(const CliParser& cli,
                           const bench::SweepEngine& engine) {
  if (bench::SweepEngine::cancel_requested()) return 130;
  const std::size_t failed = engine.failed_points().size();
  if (failed == 0) return 0;
  if (cli.get_bool("strict")) return 1;
  return engine.ok_points() == 0 ? 1 : 0;
}

/// Prints the table, mirrors it to --csv, and writes the --json-out run
/// report. The report serializes every workload the binary executed through
/// the backend seam (bench::run_log()) alongside the rendered table, so no
/// bench needs to thread its measurements here explicitly. @p sweep, when
/// given, adds a pool/cache summary line and per-failure replay lines to
/// stdout, and a "sweep" section (ok/failed counts, failed_points with
/// replay commands) to the report. Sweep execution counters never enter the
/// report — it stays byte-identical across --jobs and cache temperature.
inline void emit(const CliParser& cli, const std::string& title,
                 const Table& table,
                 const bench::SweepEngine* sweep = nullptr) {
  std::cout << "\n== " << title << " ==\n" << table;
  bench::SweepReport sr;
  if (sweep != nullptr) {
    sr = sweep_report(cli, *sweep);
    std::cout << "(sweep: " << sweep->executed_points() << " simulated, "
              << sweep->cache_hits() << " cache hits, ";
    if (sweep->journal_hits() > 0) {
      std::cout << sweep->journal_hits() << " journal hits, ";
    }
    std::cout << "jobs=" << sweep->jobs() << ")\n";
    for (const auto& f : sr.failures) {
      std::cout << "(point " << f.index << " " << f.status << ": " << f.message
                << "; replay: " << f.replay << ")\n";
    }
  }
  const std::string path = cli.get("csv");
  if (!path.empty()) {
    if (table.write_csv(path)) {
      std::cout << "(csv written to " << path << ")\n";
    } else {
      std::cerr << "failed to write csv to " << path << "\n";
    }
  }
  const std::string json_path = cli.get("json-out");
  if (!json_path.empty()) {
    const auto& runs = bench::run_log();
    bench::ReportMeta meta;
    meta.bench = cli.program_name();
    meta.title = title;
    meta.backend = cli.get("backend");
    meta.machine = runs.empty() ? "" : runs.back().run.machine;
    meta.command = cli.command_line();
    meta.wall_time_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_time())
                           .count();
    if (bench::write_run_report_file(json_path, meta, &table, runs,
                                     sweep != nullptr ? &sr : nullptr)) {
      std::cout << "(json report written to " << json_path << ", "
                << runs.size() << " runs)\n";
    } else {
      std::cerr << "failed to write json report to " << json_path << "\n";
    }
  }
}

}  // namespace am::bench_util
