// Shared plumbing for the experiment harnesses: every bench binary
// reproduces one table/figure of the paper, prints it as an aligned ASCII
// table, and mirrors it to a CSV file for offline plotting.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_core/backend.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "model/bouncing_model.hpp"
#include "model/params.hpp"
#include "sim/config.hpp"

namespace am::bench_util {

/// Registers the flags every experiment binary shares.
inline void add_common_flags(CliParser& cli) {
  cli.add_flag("backend",
               "execution backend: sim:xeon | sim:knl | sim:test | hw | auto",
               "sim:xeon");
  cli.add_flag("csv", "write the table as CSV to this path (empty = skip)",
               "");
  cli.add_flag("threads", "comma-separated thread counts (empty = default sweep)",
               "");
}

/// Builds the backend named by --backend.
inline std::unique_ptr<bench::ExecutionBackend> backend_from(
    const CliParser& cli) {
  return bench::make_backend(cli.get("backend"));
}

/// Analytic model parameters for a sim backend spec; for "hw" this returns
/// the Xeon skeleton (structure only) — pair it with calibration.
inline model::ModelParams params_for(const std::string& backend_spec) {
  if (backend_spec.rfind("sim:", 0) == 0) {
    return model::ModelParams::from_machine(
        sim::preset_by_name(backend_spec.substr(4)));
  }
  return model::ModelParams::from_machine(sim::xeon_e5_2x18());
}

/// Default thread sweep for a backend: powers-of-two-ish points up to the
/// machine's core count (the x-axis of the paper's figures).
inline std::vector<std::uint32_t> default_thread_sweep(std::uint32_t max) {
  std::vector<std::uint32_t> sweep;
  for (std::uint32_t n : {1u, 2u, 4u, 8u, 12u, 16u, 24u, 32u, 36u, 48u, 64u}) {
    if (n <= max) sweep.push_back(n);
  }
  if (sweep.empty() || sweep.back() != max) sweep.push_back(max);
  return sweep;
}

/// Thread sweep from --threads, falling back to the default.
inline std::vector<std::uint32_t> thread_sweep(const CliParser& cli,
                                               std::uint32_t max) {
  if (!cli.has("threads")) return default_thread_sweep(max);
  std::vector<std::uint32_t> sweep;
  for (auto v : cli.get_int_list("threads")) {
    if (v >= 1 && static_cast<std::uint32_t>(v) <= max) {
      sweep.push_back(static_cast<std::uint32_t>(v));
    }
  }
  return sweep.empty() ? default_thread_sweep(max) : sweep;
}

/// Prints the table and mirrors it to --csv when requested.
inline void emit(const CliParser& cli, const std::string& title,
                 const Table& table) {
  std::cout << "\n== " << title << " ==\n" << table;
  const std::string path = cli.get("csv");
  if (!path.empty()) {
    if (table.write_csv(path)) {
      std::cout << "(csv written to " << path << ")\n";
    } else {
      std::cerr << "failed to write csv to " << path << "\n";
    }
  }
}

}  // namespace am::bench_util
