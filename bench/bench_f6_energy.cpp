// F6 — Energy per operation vs. thread count (package + DRAM split).
//
// The paper reads RAPL around each epoch; the simulator reconstructs the
// same totals from events (core active/spin cycles, transfers, directory
// and memory touches — see sim/energy_model.hpp). The structural result:
// energy per op grows with contention because every op drags a line
// transfer while N-1 cores burn spin power waiting; private lines stay
// flat. The model column prices L(N, w) with the same coefficients.
#include <iostream>

#include "bench_util.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("F6: energy per operation vs threads");
  bench_util::add_common_flags(cli);
  if (!am::bench_util::parse_common(cli, argc, argv)) return 1;

  auto backend = bench_util::backend_from(cli);
  const model::BouncingModel model(bench_util::params_for(cli.get("backend")));
  const auto sweep = bench_util::thread_sweep(cli, backend->max_threads());

  Table table({"machine", "primitive", "workload", "threads",
               "measured nJ/op", "model nJ/op", "pkg nJ/op", "dram nJ/op"});

  for (Primitive prim : {Primitive::kFaa, Primitive::kCasLoop,
                         Primitive::kLoad}) {
    for (bench::WorkloadMode mode : {bench::WorkloadMode::kHighContention,
                                     bench::WorkloadMode::kLowContention}) {
      for (std::uint32_t n : sweep) {
        bench::WorkloadConfig w;
        w.mode = mode;
        w.prim = prim;
        w.threads = n;
        const auto run = backend->run(w);
        if (!run.energy_valid) continue;
        const model::Prediction pred =
            mode == bench::WorkloadMode::kHighContention
                ? model.predict(prim, n, 0.0)
                : model.predict_private(prim, n, 0.0);
        const double ops = static_cast<double>(run.total_ops());
        const double pkg =
            ops > 0.0 ? run.energy_package_j * 1e9 / ops : 0.0;
        const double dram = ops > 0.0 ? run.energy_dram_j * 1e9 / ops : 0.0;
        table.add_row({backend->machine_name(), to_string(prim),
                       to_string(mode), Table::num(std::size_t{n}),
                       Table::num(run.energy_per_op_nj(), 1),
                       Table::num(pred.energy_per_op_nj, 1),
                       Table::num(pkg, 1), Table::num(dram, 1)});
      }
    }
  }

  bench_util::emit(cli,
                   "F6: energy per op (" + backend->machine_name() + ")",
                   table);
  return 0;
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
