// T2 — Low-contention latency of every primitive, conditioned on where the
// target cache line lives (the paper's state-conditioned latency table).
//
// Rows: primitive x line situation
//   local-M / local-E : line already held by the issuing core
//   local-S           : shared copy held locally (upgrade needed for RMWs)
//   neighbor-M        : dirty in the nearest other core's cache
//   remote-M          : dirty in the farthest core's cache (cross socket /
//                       opposite mesh corner)
//   memory            : cached nowhere
// Columns: measured single-op latency on the machine, model prediction.
#include <iostream>

#include "bench_util.hpp"
#include "sim/machine.hpp"

namespace am {
namespace {

struct Situation {
  const char* name;
  sim::Mesi state;
  bool remote;    // owner is another core
  bool farthest;  // use the most distant core as owner
};

int run(int argc, const char* const* argv) {
  CliParser cli("T2: single-op latency by primitive and line state");
  bench_util::add_common_flags(cli);
  cli.add_flag("machine", "sim preset: xeon | knl", "xeon");
  if (!am::bench_util::parse_common(cli, argc, argv)) return 1;

  const sim::MachineConfig cfg = sim::preset_by_name(cli.get("machine"));
  const model::BouncingModel model(model::ModelParams::from_machine(cfg));
  const auto ic = cfg.make_interconnect();
  const sim::CoreId requester = 0;
  const sim::CoreId neighbor = 1;
  // Farthest core from core 0 under this topology's transfer metric.
  sim::CoreId far_core = 1;
  for (sim::CoreId c = 1; c < cfg.core_count(); ++c) {
    if (ic->transfer_cycles(c, requester) >
        ic->transfer_cycles(far_core, requester)) {
      far_core = c;
    }
  }

  const Situation situations[] = {
      {"local-M", sim::Mesi::kModified, false, false},
      {"local-E", sim::Mesi::kExclusive, false, false},
      {"local-S", sim::Mesi::kShared, false, false},
      {"neighbor-M", sim::Mesi::kModified, true, false},
      {"remote-M", sim::Mesi::kModified, true, true},
      {"memory", sim::Mesi::kInvalid, false, false},
  };

  Table table({"machine", "primitive", "line state", "measured (cy)",
               "model (cy)", "measured (ns)"});

  for (Primitive prim : all_primitives()) {
    if (prim == Primitive::kCasLoop) continue;  // identical to CAS here
    for (const Situation& s : situations) {
      sim::Machine machine(cfg);
      const sim::CoreId owner =
          s.remote ? (s.farthest ? far_core : neighbor) : requester;
      // Value 0 everywhere keeps CAS expectations fresh: T2 measures the
      // primitive's cost, not failure behaviour (that is F4).
      machine.prime_line(7, s.state, owner, 0);
      const sim::Cycles measured =
          machine.measure_single_op(requester, prim, 7);

      // Model prediction for the same situation.
      double predicted = 0.0;
      const double c = model.params().local_op_cycles(prim);
      if (s.state == sim::Mesi::kInvalid) {
        predicted = model.single_op_latency(prim, sim::Supply::kMemory, 0);
      } else if (s.remote) {
        predicted = model.single_op_latency(
            prim, ic->supply_class(owner, requester),
            static_cast<double>(ic->transfer_cycles(owner, requester)));
      } else if (s.state == sim::Mesi::kShared && needs_exclusive(prim)) {
        predicted = static_cast<double>(cfg.shared_supply) + c;  // upgrade
      } else {
        predicted = c;  // local hit
      }

      const double ns =
          static_cast<double>(measured) / cfg.freq_ghz;  // cycles -> ns
      table.add_row({cfg.name, to_string(prim), s.name,
                     Table::num(std::size_t{measured}),
                     Table::num(predicted, 1), Table::num(ns, 1)});
    }
  }

  bench_util::emit(cli, "T2: state-conditioned single-op latency (" +
                            cfg.name + ")",
                   table);
  return 0;
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
