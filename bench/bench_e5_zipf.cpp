// E5 (extension) — skewed sharing: throughput vs Zipf exponent.
//
// Between the paper's two poles (one shared line, all-private lines) real
// workloads spread accesses over a skewed set of lines. The sweep crosses
// from near-linear scaling (uniform over many lines) to the single-line
// plateau as the exponent grows; the model column is the closed-network
// mean-value analysis (BouncingModel::predict_zipf).
#include <iostream>

#include "bench_util.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("E5: Zipf-skewed sharing, throughput vs exponent");
  bench_util::add_common_flags(cli);
  if (!am::bench_util::parse_common(cli, argc, argv)) return 1;

  auto probe = bench_util::probe_backend(cli);
  const model::BouncingModel model(bench_util::params_for(cli.get("backend")));
  auto sweep = bench_util::sweep_from(cli);

  Table table({"machine", "threads", "lines", "zipf s", "measured ops/kcy",
               "model ops/kcy"});

  struct Point {
    std::uint32_t threads;
    std::size_t lines;
    double s;
    std::size_t index;
  };
  std::vector<Point> points;
  for (std::uint32_t n : {8u, 16u, 32u}) {
    if (n > probe->max_threads()) continue;
    for (std::size_t lines : {std::size_t{16}, std::size_t{256}}) {
      for (double s : {0.0, 0.5, 0.8, 0.99, 1.2, 1.5, 2.0}) {
        bench::WorkloadConfig w;
        w.mode = bench::WorkloadMode::kZipf;
        w.prim = Primitive::kFaa;
        w.threads = n;
        w.zipf_lines = lines;
        w.zipf_s = s;
        points.push_back({n, lines, s, sweep.engine->submit(w)});
      }
    }
  }
  sweep.engine->drain();

  for (const Point& p : points) {
    const bench::MeasuredRun* run = sweep.engine->result_or_null(p.index);
    if (run == nullptr) {
      table.add_row(bench_util::degraded_row(
          table,
          {probe->machine_name(), Table::num(std::size_t{p.threads}),
           Table::num(p.lines), Table::num(p.s, 2)},
          sweep.engine->outcome(p.index)));
      continue;
    }
    const model::Prediction pred =
        model.predict_zipf(Primitive::kFaa, p.threads, 0.0, p.lines, p.s);
    table.add_row({probe->machine_name(), Table::num(std::size_t{p.threads}),
                   Table::num(p.lines), Table::num(p.s, 2),
                   Table::num(run->throughput_ops_per_kcycle(), 2),
                   Table::num(pred.throughput_ops_per_kcycle, 2)});
  }

  bench_util::emit(cli, "E5: Zipf sharing (" + probe->machine_name() + ")",
                   table, sweep.engine.get());
  return bench_util::sweep_exit_code(cli, *sweep.engine);
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
