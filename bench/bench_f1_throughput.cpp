// F1 — High-contention throughput vs. thread count, all primitives.
//
// The paper's headline figure: RMW primitives plateau almost immediately
// (one line hand-off per op, serialized), LOAD scales linearly (Shared
// copies), and the CAS retry loop *degrades* with threads. The model
// column overlays the closed-form prediction on every measured point.
#include <iostream>

#include "bench_util.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("F1: high-contention throughput vs threads");
  bench_util::add_common_flags(cli);
  if (!am::bench_util::parse_common(cli, argc, argv)) return 1;

  auto probe = bench_util::probe_backend(cli);
  const model::BouncingModel model(bench_util::params_for(cli.get("backend")));
  const auto thread_points =
      bench_util::thread_sweep(cli, probe->max_threads());
  auto sweep = bench_util::sweep_from(cli);

  Table table({"machine", "primitive", "threads", "measured Mops",
               "model Mops", "measured ops/kcy", "model ops/kcy"});

  // Submit the full grid, then build the table from the drained results in
  // submission order — rows and run log are identical at any --jobs.
  struct Point {
    Primitive prim;
    std::uint32_t threads;
    std::size_t index;
  };
  std::vector<Point> points;
  for (Primitive prim : all_primitives()) {
    for (std::uint32_t n : thread_points) {
      bench::WorkloadConfig w;
      w.mode = bench::WorkloadMode::kHighContention;
      w.prim = prim;
      w.threads = n;
      points.push_back({prim, n, sweep.engine->submit(w)});
    }
  }
  sweep.engine->drain();

  for (const Point& p : points) {
    const bench::MeasuredRun* run = sweep.engine->result_or_null(p.index);
    if (run == nullptr) {
      // A failed point degrades to a dark row; the sweep summary carries
      // its outcome and replay command.
      table.add_row(bench_util::degraded_row(
          table,
          {probe->machine_name(), to_string(p.prim),
           Table::num(std::size_t{p.threads})},
          sweep.engine->outcome(p.index)));
      continue;
    }
    const model::Prediction pred = model.predict(p.prim, p.threads, 0.0);
    table.add_row({probe->machine_name(), to_string(p.prim),
                   Table::num(std::size_t{p.threads}),
                   Table::num(run->throughput_mops(), 2),
                   Table::num(pred.throughput_mops, 2),
                   Table::num(run->throughput_ops_per_kcycle(), 3),
                   Table::num(pred.throughput_ops_per_kcycle, 3)});
  }

  bench_util::emit(cli,
                   "F1: throughput vs threads, shared line, w=0 (" +
                       probe->machine_name() + ")",
                   table, sweep.engine.get());
  return bench_util::sweep_exit_code(cli, *sweep.engine);
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
