// F1 — High-contention throughput vs. thread count, all primitives.
//
// The paper's headline figure: RMW primitives plateau almost immediately
// (one line hand-off per op, serialized), LOAD scales linearly (Shared
// copies), and the CAS retry loop *degrades* with threads. The model
// column overlays the closed-form prediction on every measured point.
#include <iostream>

#include "bench_util.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("F1: high-contention throughput vs threads");
  bench_util::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 1;

  auto backend = bench_util::backend_from(cli);
  const model::BouncingModel model(bench_util::params_for(cli.get("backend")));
  const auto sweep = bench_util::thread_sweep(cli, backend->max_threads());

  Table table({"machine", "primitive", "threads", "measured Mops",
               "model Mops", "measured ops/kcy", "model ops/kcy"});

  for (Primitive prim : all_primitives()) {
    for (std::uint32_t n : sweep) {
      bench::WorkloadConfig w;
      w.mode = bench::WorkloadMode::kHighContention;
      w.prim = prim;
      w.threads = n;
      const bench::MeasuredRun run = backend->run(w);
      const model::Prediction pred = model.predict(prim, n, 0.0);
      table.add_row({backend->machine_name(), to_string(prim),
                     Table::num(std::size_t{n}),
                     Table::num(run.throughput_mops(), 2),
                     Table::num(pred.throughput_mops, 2),
                     Table::num(run.throughput_ops_per_kcycle(), 3),
                     Table::num(pred.throughput_ops_per_kcycle, 3)});
    }
  }

  bench_util::emit(cli,
                   "F1: throughput vs threads, shared line, w=0 (" +
                       backend->machine_name() + ")",
                   table);
  return 0;
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
