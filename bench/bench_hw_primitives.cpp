// Google-benchmark microbenchmarks of the raw primitives on the host CPU —
// the hardware-side anchor for Table 2's local-hit column. These time the
// actual lock-prefixed instructions through the same atomics layer the
// measurement engine uses.
#include <benchmark/benchmark.h>

#include <atomic>

#include "atomics/padded.hpp"
#include "atomics/primitives.hpp"
#include "lockfree/ms_queue.hpp"
#include "lockfree/treiber_stack.hpp"

namespace am {
namespace {

template <Primitive P>
void BM_Primitive(benchmark::State& state) {
  PaddedAtomic cell;
  OpContext ctx;
  for (auto _ : state) {
    OpResult r = execute(P, cell.value, ctx);
    benchmark::DoNotOptimize(r.observed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK(BM_Primitive<Primitive::kLoad>)->Name("hw/LOAD");
BENCHMARK(BM_Primitive<Primitive::kStore>)->Name("hw/STORE");
BENCHMARK(BM_Primitive<Primitive::kSwap>)->Name("hw/SWP");
BENCHMARK(BM_Primitive<Primitive::kTas>)->Name("hw/TAS");
BENCHMARK(BM_Primitive<Primitive::kFaa>)->Name("hw/FAA");
BENCHMARK(BM_Primitive<Primitive::kCas>)->Name("hw/CAS");
BENCHMARK(BM_Primitive<Primitive::kCasLoop>)->Name("hw/CASLOOP");

// Contended variants when the host has threads to spare: gbench's
// threaded mode hammers one line from all benchmark threads.
template <Primitive P>
void BM_Contended(benchmark::State& state) {
  static PaddedAtomic cell;
  OpContext ctx;
  for (auto _ : state) {
    OpResult r = execute(P, cell.value, ctx);
    benchmark::DoNotOptimize(r.observed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK(BM_Contended<Primitive::kFaa>)
    ->Name("hw/FAA/contended")
    ->ThreadRange(1, 4);
BENCHMARK(BM_Contended<Primitive::kCasLoop>)
    ->Name("hw/CASLOOP/contended")
    ->ThreadRange(1, 4);

// Lock-free structures: one push+pop / enqueue+dequeue pair per iteration.
void BM_TreiberStack(benchmark::State& state) {
  static lockfree::TreiberStack<std::uint64_t> stack(1024);
  for (auto _ : state) {
    stack.push(1);
    benchmark::DoNotOptimize(stack.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_TreiberStack)->Name("hw/treiber-stack")->ThreadRange(1, 4);

void BM_MsQueue(benchmark::State& state) {
  static lockfree::MichaelScottQueue<std::uint64_t> queue(1024);
  for (auto _ : state) {
    queue.enqueue(1);
    benchmark::DoNotOptimize(queue.dequeue());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_MsQueue)->Name("hw/ms-queue")->ThreadRange(1, 4);

}  // namespace
}  // namespace am

BENCHMARK_MAIN();
