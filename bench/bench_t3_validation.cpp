// T3 — Model validation: predicted vs. measured over the full
// (primitive, threads, work) grid, with aggregate error metrics.
//
// This is the paper's accuracy table. Absolute agreement is expected to be
// tight against the simulator (the model abstracts exactly its hand-off
// process); on hardware the same harness reports how well the calibrated
// model carries over.
#include <iostream>

#include "bench_util.hpp"
#include "model/validate.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("T3: model validation grid (predicted vs measured)");
  bench_util::add_common_flags(cli);
  cli.add_flag("full", "sweep the full grid (slower)", "false");
  if (!am::bench_util::parse_common(cli, argc, argv)) return 1;

  auto backend = bench_util::backend_from(cli);
  const model::BouncingModel model(bench_util::params_for(cli.get("backend")));

  model::ValidationOptions opts;
  opts.primitives = {Primitive::kLoad, Primitive::kStore, Primitive::kSwap,
                     Primitive::kTas,  Primitive::kFaa,   Primitive::kCas,
                     Primitive::kCasLoop};
  opts.thread_counts.clear();
  for (std::uint32_t n : bench_util::thread_sweep(cli, backend->max_threads())) {
    opts.thread_counts.push_back(n);
  }
  opts.work_values = cli.get_bool("full")
                         ? std::vector<double>{0, 100, 500, 1000, 2000, 4000,
                                               8000, 16000}
                         : std::vector<double>{0, 500, 4000};

  const model::ValidationReport report =
      model::validate(*backend, model, opts);

  Table table({"primitive", "threads", "work", "meas ops/kcy", "pred ops/kcy",
               "tput err %", "meas lat cy", "pred lat cy", "lat err %"});
  for (const auto& p : report.points) {
    table.add_row({to_string(p.prim), Table::num(std::size_t{p.threads}),
                   Table::num(p.work, 0), Table::num(p.measured_tput, 3),
                   Table::num(p.predicted_tput, 3),
                   Table::num(p.tput_error() * 100.0, 1),
                   Table::num(p.measured_latency, 1),
                   Table::num(p.predicted_latency, 1),
                   Table::num(p.latency_error() * 100.0, 1)});
  }

  bench_util::emit(cli,
                   "T3: validation grid (" + backend->machine_name() + ")",
                   table);
  std::cout << "aggregate: throughput MAPE = "
            << Table::num(report.mape_throughput * 100.0, 2)
            << "%, latency MAPE = "
            << Table::num(report.mape_latency * 100.0, 2)
            << "%, worst throughput error = "
            << Table::num(report.max_rel_err_throughput * 100.0, 2) << "%\n";
  return 0;
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
