// E3 (extension) — read-mostly sharing: throughput vs write fraction.
//
// The paper's low-contention application context: a shared variable that is
// read constantly and written occasionally. Reads hit Shared copies and
// scale; every write invalidates all readers and triggers a refetch burst.
// The sweep shows the cliff between "read-only scales with N" and "a few
// percent writes serialize everything", with the model's mixed prediction
// overlaid.
#include <iostream>

#include "bench_util.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("E3: read-mostly mix, throughput vs write fraction");
  bench_util::add_common_flags(cli);
  cli.add_flag("write-prim", "write primitive (FAA | STORE | SWP | CAS)",
               "FAA");
  if (!am::bench_util::parse_common(cli, argc, argv)) return 1;

  auto backend = bench_util::backend_from(cli);
  const model::BouncingModel model(bench_util::params_for(cli.get("backend")));
  const Primitive write_prim =
      parse_primitive(cli.get("write-prim")).value_or(Primitive::kFaa);

  Table table({"machine", "threads", "write %", "measured ops/kcy",
               "model ops/kcy", "invalidations/op"});

  for (std::uint32_t n : {8u, 16u, 32u}) {
    if (n > backend->max_threads()) continue;
    for (double f : {0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0}) {
      bench::WorkloadConfig w;
      w.mode = bench::WorkloadMode::kMixedReadWrite;
      w.prim = write_prim;
      w.threads = n;
      w.write_fraction = f;
      const auto run = backend->run(w);
      const model::Prediction pred =
          model.predict_mixed(write_prim, f, n, 0.0);
      const double ops = static_cast<double>(run.total_ops());
      table.add_row({backend->machine_name(), Table::num(std::size_t{n}),
                     Table::num(f * 100.0, 1),
                     Table::num(run.throughput_ops_per_kcycle(), 2),
                     Table::num(pred.throughput_ops_per_kcycle, 2),
                     Table::num(ops > 0
                                    ? static_cast<double>(run.invalidations) /
                                          ops
                                    : 0.0,
                                3)});
    }
  }

  bench_util::emit(cli,
                   std::string("E3: read-mostly mix, writes via ") +
                       to_string(write_prim) + " (" + backend->machine_name() +
                       ")",
                   table);
  return 0;
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
