// T1 — Machine parameters of the two studied architectures.
//
// Reproduces the paper's testbed table: core counts, clocks, and the
// transfer-cost parameters the model runs on, shown twice — the configured
// (analytic) values and the values recovered by black-box calibration
// against the running machine. Matching columns demonstrate the
// calibration procedure the paper's "simple to use in practice" claim
// rests on.
#include <iostream>

#include "bench_core/sim_backend.hpp"
#include "bench_util.hpp"
#include "model/calibrate.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("T1: machine parameter table (configured vs calibrated)");
  bench_util::add_common_flags(cli);
  if (!am::bench_util::parse_common(cli, argc, argv)) return 1;

  Table table({"machine", "cores", "GHz", "topology", "param", "configured",
               "calibrated", "fit r^2"});

  // One pooled task per preset: calibration is an adaptive multi-run
  // procedure, so it runs whole on one worker with its runs recorded into a
  // task-local log the engine merges back in submission order.
  auto sweep = bench_util::sweep_from(cli);
  const std::vector<std::string> presets = {"xeon", "knl"};
  std::vector<model::Calibration> calibrations(presets.size());
  std::vector<std::size_t> task_index(presets.size());
  for (std::size_t i = 0; i < presets.size(); ++i) {
    sim::MachineConfig cfg = sim::preset_by_name(presets[i]);
    // FIFO keeps the near/far mixture exactly identifiable for the fit.
    sim::MachineConfig fifo = cfg;
    fifo.arbitration = sim::Arbitration::kFifo;
    task_index[i] = sweep.engine->submit_task(
        [&cli, &sweep, &calibrations, i, fifo](
            std::uint64_t seed, std::vector<bench::RecordedRun>& log) {
          bench::SimBackend backend(fifo, {}, seed);
          backend.set_run_recorder(&log);
          bench_util::apply_task_obs(cli, sweep.trace.get(), backend);
          const model::ModelParams skeleton =
              model::ModelParams::from_machine(fifo);
          calibrations[i] = model::calibrate(backend, skeleton);
        });
  }
  sweep.engine->drain();

  for (std::size_t i = 0; i < presets.size(); ++i) {
    const sim::MachineConfig cfg = sim::preset_by_name(presets[i]);
    const auto outcome = sweep.engine->outcome(task_index[i]);
    if (outcome.status != bench::PointStatus::kOk) {
      // A failed calibration would leave all-default columns; dark the
      // preset's block instead and let the sweep summary explain why.
      table.add_row(bench_util::degraded_row(
          table,
          {cfg.name, Table::num(std::size_t{cfg.core_count()}),
           Table::num(cfg.freq_ghz, 1)},
          outcome));
      continue;
    }
    const model::Calibration& cal = calibrations[i];

    const auto ic = cfg.make_interconnect();
    auto row = [&](const std::string& param, double configured,
                   double calibrated) {
      table.add_row({cfg.name, Table::num(std::size_t{cfg.core_count()}),
                     Table::num(cfg.freq_ghz, 1), ic->describe(), param,
                     Table::num(configured, 1), Table::num(calibrated, 1),
                     Table::num(cal.fit_r_squared, 3)});
    };
    const double near_cfg = cfg.interconnect == sim::InterconnectKind::kMesh
                                ? static_cast<double>(cfg.mesh_base_xfer)
                                : static_cast<double>(cfg.same_socket_xfer);
    const double far_cfg =
        cfg.interconnect == sim::InterconnectKind::kMesh
            ? static_cast<double>(cfg.mesh_base_xfer + 8 * cfg.mesh_per_hop)
            : static_cast<double>(cfg.cross_socket_xfer);
    row("t_near (cy)", near_cfg, cal.t_near);
    row("t_far (cy)", far_cfg, cal.t_far);
    row("c_FAA (cy)",
        static_cast<double>(cfg.l1_hit + cfg.exec_cost_of(Primitive::kFaa)),
        cal.local_cost[static_cast<std::size_t>(Primitive::kFaa)]);
    row("c_CAS (cy)",
        static_cast<double>(cfg.l1_hit + cfg.exec_cost_of(Primitive::kCas)),
        cal.local_cost[static_cast<std::size_t>(Primitive::kCas)]);
    row("c_LOAD (cy)",
        static_cast<double>(cfg.l1_hit + cfg.exec_cost_of(Primitive::kLoad)),
        cal.local_cost[static_cast<std::size_t>(Primitive::kLoad)]);
    if (cal.hop_fit) {
      // Distance-aware refinement (mesh machines): strictly better r^2.
      table.add_row({cfg.name, Table::num(std::size_t{cfg.core_count()}),
                     Table::num(cfg.freq_ghz, 1), ic->describe(),
                     "t_base (cy/hop fit)",
                     Table::num(static_cast<double>(cfg.mesh_base_xfer), 1),
                     Table::num(cal.t_base, 1),
                     Table::num(cal.hop_fit_r_squared, 3)});
      table.add_row({cfg.name, Table::num(std::size_t{cfg.core_count()}),
                     Table::num(cfg.freq_ghz, 1), ic->describe(),
                     "t_per_hop (cy/hop fit)",
                     Table::num(static_cast<double>(cfg.mesh_per_hop), 1),
                     Table::num(cal.t_per_hop, 1),
                     Table::num(cal.hop_fit_r_squared, 3)});
    }
  }

  bench_util::emit(cli, "T1: machine parameters (configured vs calibrated)",
                   table, sweep.engine.get());
  return bench_util::sweep_exit_code(cli, *sweep.engine);
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
