// F3 — Throughput vs. parallel work w at fixed thread counts: the paper's
// two-regime figure.
//
// Below the crossover w* = (N-1)*h the system is saturated: work hides
// behind the queue and throughput stays pinned at 1/h. Beyond w* the
// system is work-bound: X = N/(w + h). The harness sweeps w across the
// crossover for several N and prints the model prediction, the measured
// value, and the regime the model assigns.
#include <iostream>

#include "bench_util.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("F3: throughput vs parallel work (two regimes + crossover)");
  bench_util::add_common_flags(cli);
  cli.add_flag("prim", "primitive to sweep", "FAA");
  if (!am::bench_util::parse_common(cli, argc, argv)) return 1;

  auto probe = bench_util::probe_backend(cli);
  const model::BouncingModel model(bench_util::params_for(cli.get("backend")));
  const Primitive prim =
      parse_primitive(cli.get("prim")).value_or(Primitive::kFaa);
  auto sweep = bench_util::sweep_from(cli);

  Table table({"machine", "threads", "work (cy)", "w/w*", "measured ops/kcy",
               "model ops/kcy", "regime", "crossover w* (cy)"});

  std::vector<std::uint32_t> thread_points;
  for (std::uint32_t n : {8u, 16u, 32u, 64u}) {
    if (n <= probe->max_threads()) thread_points.push_back(n);
  }

  struct Point {
    std::uint32_t threads;
    bench::Cycles work;
    double frac;
    double wstar;
    std::size_t index;
  };
  std::vector<Point> points;
  for (std::uint32_t n : thread_points) {
    const double wstar = model.crossover_work(prim, n);
    for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0, 8.0}) {
      const auto work = static_cast<bench::Cycles>(frac * wstar);
      bench::WorkloadConfig w;
      w.mode = bench::WorkloadMode::kHighContention;
      w.prim = prim;
      w.threads = n;
      w.work = work;
      points.push_back({n, work, frac, wstar, sweep.engine->submit(w)});
    }
  }
  sweep.engine->drain();

  for (const Point& p : points) {
    const bench::MeasuredRun* run = sweep.engine->result_or_null(p.index);
    if (run == nullptr) {
      table.add_row(bench_util::degraded_row(
          table,
          {probe->machine_name(), Table::num(std::size_t{p.threads}),
           Table::num(std::size_t{p.work})},
          sweep.engine->outcome(p.index)));
      continue;
    }
    const model::Prediction pred =
        model.predict(prim, p.threads, static_cast<double>(p.work));
    table.add_row({probe->machine_name(), Table::num(std::size_t{p.threads}),
                   Table::num(std::size_t{p.work}), Table::num(p.frac, 2),
                   Table::num(run->throughput_ops_per_kcycle(), 3),
                   Table::num(pred.throughput_ops_per_kcycle, 3),
                   to_string(pred.regime), Table::num(p.wstar, 0)});
  }

  bench_util::emit(cli,
                   std::string("F3: regimes and crossover, ") +
                       to_string(prim) + " (" + probe->machine_name() + ")",
                   table, sweep.engine.get());
  return bench_util::sweep_exit_code(cli, *sweep.engine);
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
