// E4 (extension) — lock-free data structures as model case studies.
//
// The Treiber stack is a CAS retry loop on one hot head word plus node-link
// traffic; its scalability curve must therefore follow the paper's CASLOOP
// analysis (completed ops *fall* as threads are added). The harness runs
// the full protocol on the coherence machine, reports completed stack
// operations, CAS attempt efficiency, and overlays the plain-CASLOOP model
// curve for reference.
#include <iostream>

#include "bench_util.hpp"
#include "lockfree/queue_program.hpp"
#include "lockfree/stack_program.hpp"
#include "sim/machine.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("E4: Treiber stack on the coherence machine");
  bench_util::add_common_flags(cli);
  cli.add_flag("machine", "sim preset: xeon | knl", "xeon");
  cli.add_flag("work", "cycles of local work between stack ops", "0");
  if (!am::bench_util::parse_common(cli, argc, argv)) return 1;

  const sim::MachineConfig cfg = sim::preset_by_name(cli.get("machine"));
  const model::BouncingModel model(model::ModelParams::from_machine(cfg));
  const auto work = static_cast<sim::Cycles>(cli.get_int("work"));

  Table table({"machine", "threads", "stack ops/kcy", "CAS efficiency",
               "CASLOOP model ops/kcy", "stack/model"});

  for (std::uint32_t n : bench_util::thread_sweep(cli, cfg.core_count())) {
    sim::Machine machine(cfg, 17);
    lockfree::TreiberStackProgram prog(work);
    const sim::RunStats st = machine.run(prog, n, 50'000, 300'000);
    const double ops =
        static_cast<double>(lockfree::TreiberStackProgram::completed_ops(st));
    std::uint64_t cas_attempts = 0;
    for (const auto& t : st.threads) {
      cas_attempts += t.ops_by_prim[static_cast<std::size_t>(Primitive::kCas)];
    }
    const double x = ops * 1000.0 / static_cast<double>(st.measured_cycles);
    const model::Prediction loop =
        model.predict(Primitive::kCasLoop, n, static_cast<double>(work));
    table.add_row(
        {cfg.name, Table::num(std::size_t{n}), Table::num(x, 3),
         Table::num(cas_attempts > 0 ? ops / static_cast<double>(cas_attempts)
                                     : 1.0,
                    3),
         Table::num(loop.throughput_ops_per_kcycle, 3),
         Table::num(loop.throughput_ops_per_kcycle > 0
                        ? x / loop.throughput_ops_per_kcycle
                        : 0.0,
                    2)});
  }

  bench_util::emit(cli, "E4: Treiber stack vs CASLOOP model (" + cfg.name + ")",
                   table);
  std::cout << "note: each completed stack op also reads the head, writes a\n"
               "node link (push) or reads one (pop), so the stack sits below\n"
               "the bare CASLOOP curve by a roughly constant factor.\n";

  // Structure comparison: the MS queue spreads producers and consumers over
  // two hot words (tail+link vs head) and must beat the single-word stack.
  Table vs({"machine", "threads", "stack ops/kcy", "queue ops/kcy",
            "queue/stack"});
  for (std::uint32_t n : bench_util::thread_sweep(cli, cfg.core_count())) {
    sim::Machine ms(cfg, 21);
    lockfree::TreiberStackProgram stack(work);
    const sim::RunStats sst = ms.run(stack, n, 0, 300'000);
    const double sx =
        static_cast<double>(lockfree::TreiberStackProgram::completed_ops(sst)) *
        1000.0 / static_cast<double>(sst.measured_cycles);

    sim::Machine mq(cfg, 21);
    lockfree::MsQueueProgram queue(work);
    const sim::RunStats qst = mq.run(queue, n, 0, 300'000);
    const double qx = static_cast<double>(queue.total_completions()) * 1000.0 /
                      static_cast<double>(qst.measured_cycles);
    vs.add_row({cfg.name, Table::num(std::size_t{n}), Table::num(sx, 3),
                Table::num(qx, 3), Table::num(sx > 0 ? qx / sx : 0.0, 2)});
  }
  bench_util::emit(cli, "E4b: Treiber stack vs MS queue (" + cfg.name + ")",
                   vs);
  return 0;
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
