// E2 (extension) — sharded-counter sweep: contention relief vs shard count.
//
// The constructive counterpart of F4: if the algorithm allows sharding the
// hot counter, each shard carries threads/k writers and the bouncing model
// prices it directly (predict_sharded_counter_mops). Throughput rises
// roughly linearly in k until shards ~ threads, after which every writer
// owns its line and the workload is compute-bound.
#include <iostream>

#include "bench_core/sim_backend.hpp"
#include "bench_util.hpp"
#include "model/advisor.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("E2: sharded-counter sweep");
  bench_util::add_common_flags(cli);
  cli.add_flag("machine", "sim preset: xeon | knl", "xeon");
  cli.add_flag("writer-threads", "number of incrementing threads", "32");
  if (!am::bench_util::parse_common(cli, argc, argv)) return 1;

  const sim::MachineConfig cfg = sim::preset_by_name(cli.get("machine"));
  bench::SimBackend backend(cfg);
  bench_util::apply_obs(cli, backend);
  const model::BouncingModel model(model::ModelParams::from_machine(cfg));
  const auto threads =
      std::min<std::uint32_t>(static_cast<std::uint32_t>(cli.get_int("writer-threads")),
                              backend.max_threads());

  Table table({"machine", "threads", "shards", "measured Mops", "model Mops",
               "speedup vs 1 shard"});

  double base = 0.0;
  for (std::uint32_t shards : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    if (shards > threads) break;
    bench::WorkloadConfig w;
    w.mode = bench::WorkloadMode::kSharded;
    w.prim = Primitive::kFaa;
    w.threads = threads;
    w.shards = shards;
    const auto run = backend.run(w);
    const double predicted =
        model::predict_sharded_counter_mops(model, threads, 0.0, shards);
    if (shards == 1) base = run.throughput_mops();
    table.add_row({backend.machine_name(), Table::num(std::size_t{threads}),
                   Table::num(std::size_t{shards}),
                   Table::num(run.throughput_mops(), 2),
                   Table::num(predicted, 2),
                   Table::num(base > 0.0 ? run.throughput_mops() / base : 0.0,
                              2)});
  }

  bench_util::emit(cli, "E2: sharded counter (" + cfg.name + ")", table);
  return 0;
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
