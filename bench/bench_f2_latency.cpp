// F2 — Per-operation latency vs. thread count under high contention.
//
// The dual of F1: with the line saturated, every additional thread adds a
// full hand-off to everyone else's wait, so mean latency grows linearly in
// N (slope = hold time) while the max tracks queueing jitter. The model
// column is L(N, 0) = N * h.
#include <iostream>

#include "bench_util.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("F2: high-contention per-op latency vs threads");
  bench_util::add_common_flags(cli);
  if (!am::bench_util::parse_common(cli, argc, argv)) return 1;

  auto backend = bench_util::backend_from(cli);
  const model::BouncingModel model(bench_util::params_for(cli.get("backend")));
  const auto sweep = bench_util::thread_sweep(cli, backend->max_threads());

  Table table({"machine", "primitive", "threads", "mean latency (cy)",
               "max latency (cy)", "model (cy)", "mean (ns)"});

  for (Primitive prim :
       {Primitive::kFaa, Primitive::kSwap, Primitive::kCas, Primitive::kLoad}) {
    for (std::uint32_t n : sweep) {
      bench::WorkloadConfig w;
      w.mode = bench::WorkloadMode::kHighContention;
      w.prim = prim;
      w.threads = n;
      const bench::MeasuredRun run = backend->run(w);
      const model::Prediction pred = model.predict(prim, n, 0.0);
      double max_lat = 0.0;
      bool tail_valid = false;  // p99 of 0 means "not sampled", not "instant"
      for (const auto& t : run.threads) {
        if (!t.latency_tail_valid) continue;
        tail_valid = true;
        max_lat = std::max(max_lat, t.p99_latency_cycles);
      }
      table.add_row(
          {backend->machine_name(), to_string(prim), Table::num(std::size_t{n}),
           Table::num(run.mean_latency_cycles(), 1),
           tail_valid ? Table::num(max_lat, 1) : "n/a",
           Table::num(pred.latency_cycles, 1),
           Table::num(run.mean_latency_cycles() / backend->freq_ghz(), 1)});
    }
  }

  bench_util::emit(cli,
                   "F2: per-op latency vs threads, shared line, w=0 (" +
                       backend->machine_name() + ")",
                   table);
  return 0;
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
