// F5 — Fairness vs. thread count, per primitive, with an arbitration-policy
// ablation.
//
// Fairness is reported as Jain's index and the min/max per-thread share.
// Under a FIFO fabric FAA/SWP are perfectly fair; under the proximity-
// biased fabric (requests race to the line's home agent) cores near the
// home win persistently and fairness degrades with N. The CAS retry loop
// is unfair even on a fair fabric: completions concentrate on whichever
// core holds a fresh expectation. The model column predicts Jain from the
// hand-off process's grant shares.
#include <iostream>

#include "bench_core/sim_backend.hpp"
#include "bench_util.hpp"

namespace am {
namespace {

int run(int argc, const char* const* argv) {
  CliParser cli("F5: fairness vs threads, arbitration ablation");
  bench_util::add_common_flags(cli);
  cli.add_flag("machine", "sim preset: xeon | knl", "xeon");
  if (!am::bench_util::parse_common(cli, argc, argv)) return 1;

  const sim::MachineConfig base = sim::preset_by_name(cli.get("machine"));

  Table table({"machine", "arbitration", "primitive", "threads",
               "Jain (measured)", "Jain (model)", "min/max share"});

  for (sim::Arbitration arb :
       {sim::Arbitration::kProximityBiased, sim::Arbitration::kFifo}) {
    sim::MachineConfig cfg = base;
    cfg.arbitration = arb;
    bench::SimBackend backend(cfg);
    bench_util::apply_obs(cli, backend);
    const model::BouncingModel model(model::ModelParams::from_machine(cfg));
    const auto sweep = bench_util::thread_sweep(cli, backend.max_threads());

    for (Primitive prim :
         {Primitive::kFaa, Primitive::kSwap, Primitive::kCasLoop}) {
      for (std::uint32_t n : sweep) {
        if (n < 2) continue;
        bench::WorkloadConfig w;
        w.mode = bench::WorkloadMode::kHighContention;
        w.prim = prim;
        w.threads = n;
        const auto run = backend.run(w);
        const model::Prediction pred = model.predict(prim, n, 0.0);
        table.add_row({cfg.name, to_string(arb), to_string(prim),
                       Table::num(std::size_t{n}),
                       Table::num(run.jain_fairness(), 3),
                       Table::num(pred.fairness_jain, 3),
                       Table::num(run.min_max_ratio(), 3)});
      }
    }
  }

  bench_util::emit(cli, "F5: fairness vs threads (" + base.name + ")", table);
  return 0;
}

}  // namespace
}  // namespace am

int main(int argc, char** argv) { return am::run(argc, argv); }
