// am_fleet: the supervised multi-worker serving tier.
//
// Spawns N am_serve workers on per-worker Unix sockets, keeps them alive
// (deadline health probes, exponential-backoff restart, circuit breaker)
// and fronts them with a consistent-hash router speaking the same
// am-serve/1 protocol on the --listen endpoint. Requests route by canonical
// form so each worker's LRU stays hot on its shard; when a shard's owner is
// down the request hands off to a ring successor, and when nothing is up it
// is served stale (router LRU, then the shared --sweep-cache disk tier) or
// answered with a structured `overloaded`/`unavailable` error.
//
//   am_fleet --workers=4 --listen=127.0.0.1:7789 --sweep-cache=results/cache
//   am_fleet --workers=4 --chaos-kill-every-ms=2000   # self-inflicted chaos
//
// SIGTERM/SIGINT drain the front server, then the whole fleet: workers get
// SIGTERM, finish in-flight requests and exit; final stats print to stdout.

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "fleet/chaos.hpp"
#include "fleet/router.hpp"
#include "fleet/supervisor.hpp"
#include "obs/metrics.hpp"
#include "service/server.hpp"

namespace {

extern "C" void on_signal(int) { am::service::Server::request_shutdown(); }

}  // namespace

int main(int argc, char** argv) {
  using am::CliParser;
  CliParser cli(
      "am_fleet supervisor: N am_serve workers behind a consistent-hash "
      "router with health-checked restart, admission control and stale "
      "serving");
  cli.add_flag("workers", "worker process count", "4", CliParser::FlagKind::kInt);
  cli.add_flag("listen", "front endpoint (host:port; port 0 = ephemeral)",
               "127.0.0.1:7789", CliParser::FlagKind::kEndpoint);
  cli.add_flag("listen-unix", "also listen on this Unix-domain socket path",
               "");
  cli.add_flag("service-threads", "front router thread pool width", "8",
               CliParser::FlagKind::kInt);
  cli.add_flag("worker-binary",
               "am_serve executable (default: $AM_SERVE_BIN, then next to "
               "am_fleet)",
               "");
  cli.add_flag("worker-threads", "service threads per worker", "2",
               CliParser::FlagKind::kInt);
  cli.add_flag("runtime-dir",
               "directory for per-worker unix sockets (default: a fresh "
               "/tmp/am_fleet.* dir)",
               "");
  cli.add_flag("sweep-cache",
               "shared second-level disk cache dir (--sweep-cache format; "
               "workers promote, the router serves it stale)",
               "");
  cli.add_flag("max-point-cycles",
               "per-worker simulate watchdog budget (0 = auto, negative = "
               "off)",
               "0", CliParser::FlagKind::kInt);
  cli.add_flag("health-interval-ms", "probe/restart tick period", "250",
               CliParser::FlagKind::kInt);
  cli.add_flag("probe-timeout-ms", "ping deadline per health probe", "1000",
               CliParser::FlagKind::kInt);
  cli.add_flag("restart-backoff-ms",
               "initial restart backoff (doubles per consecutive failure)",
               "200", CliParser::FlagKind::kInt);
  cli.add_flag("circuit-failures",
               "consecutive failed spawns before the circuit opens", "5",
               CliParser::FlagKind::kInt);
  cli.add_flag("circuit-cooloff-ms",
               "restart pause once the circuit is open", "10000",
               CliParser::FlagKind::kInt);
  cli.add_flag("max-inflight",
               "admission cap: in-flight requests per worker before "
               "shedding",
               "64", CliParser::FlagKind::kInt);
  cli.add_flag("failover-retries",
               "ring successors tried after the owner before degrading",
               "1", CliParser::FlagKind::kInt);
  cli.add_flag("request-timeout-ms", "deadline per forwarded request",
               "30000", CliParser::FlagKind::kInt);
  cli.add_flag("stale-capacity",
               "router stale-response LRU entries (0 disables)", "4096",
               CliParser::FlagKind::kInt);
  cli.add_flag("chaos-kill-every-ms",
               "chaos driver: SIGKILL a random worker this often (0 = off)",
               "0", CliParser::FlagKind::kInt);
  cli.add_flag("chaos-hang-every-ms",
               "chaos driver: SIGSTOP a random worker this often (0 = off)",
               "0", CliParser::FlagKind::kInt);
  cli.add_flag("metrics",
               "fleet counters in the registry and the {\"kind\":\"metrics\"} "
               "scrape",
               "true", CliParser::FlagKind::kBool);
  if (!cli.parse(argc, argv)) return 2;

  const bool metrics_on = cli.get_bool("metrics");
  am::obs::metrics::set_enabled(metrics_on);

  static am::fleet::ChaosConfig chaos;
  chaos.kill_every_ms.store(
      static_cast<int>(cli.get_int("chaos-kill-every-ms")));
  chaos.hang_every_ms.store(
      static_cast<int>(cli.get_int("chaos-hang-every-ms")));

  am::fleet::FleetConfig fleet_config;
  fleet_config.workers = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("workers")));
  fleet_config.worker_binary = cli.get("worker-binary");
  fleet_config.sweep_cache_dir = cli.get("sweep-cache");
  fleet_config.worker_threads = static_cast<unsigned>(
      std::max<std::int64_t>(1, cli.get_int("worker-threads")));
  fleet_config.health_interval_ms =
      static_cast<int>(std::max<std::int64_t>(10, cli.get_int("health-interval-ms")));
  fleet_config.probe_timeout_ms =
      static_cast<int>(std::max<std::int64_t>(10, cli.get_int("probe-timeout-ms")));
  fleet_config.restart_backoff_ms =
      static_cast<int>(std::max<std::int64_t>(1, cli.get_int("restart-backoff-ms")));
  fleet_config.circuit_failures =
      static_cast<int>(std::max<std::int64_t>(1, cli.get_int("circuit-failures")));
  fleet_config.circuit_cooloff_ms =
      static_cast<int>(std::max<std::int64_t>(1, cli.get_int("circuit-cooloff-ms")));
  fleet_config.max_inflight =
      static_cast<int>(std::max<std::int64_t>(1, cli.get_int("max-inflight")));
  fleet_config.metrics = metrics_on;
  fleet_config.chaos = &chaos;
  if (cli.get_int("max-point-cycles") != 0) {
    fleet_config.worker_args.push_back(
        "--max-point-cycles=" + std::to_string(cli.get_int("max-point-cycles")));
  }

  std::string runtime_dir = cli.get("runtime-dir");
  if (runtime_dir.empty()) {
    char tmpl[] = "/tmp/am_fleet.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::cerr << "am_fleet: cannot create runtime dir under /tmp\n";
      return 1;
    }
    runtime_dir = tmpl;
  } else {
    ::mkdir(runtime_dir.c_str(), 0755);  // best-effort; bind reports failure
  }
  fleet_config.runtime_dir = runtime_dir;

  am::fleet::Supervisor supervisor(std::move(fleet_config));
  std::string error;
  if (!supervisor.start(&error)) {
    std::cerr << "am_fleet: " << error << "\n";
    return 1;
  }
  if (!supervisor.wait_all_up(supervisor.config().start_grace_ms)) {
    std::cerr << "am_fleet: warning: not all workers came up within "
              << supervisor.config().start_grace_ms
              << "ms; serving degraded\n";
  }

  am::fleet::RouterConfig router_config;
  router_config.request_timeout_ms =
      static_cast<int>(std::max<std::int64_t>(1, cli.get_int("request-timeout-ms")));
  router_config.failover_retries =
      static_cast<int>(std::max<std::int64_t>(0, cli.get_int("failover-retries")));
  router_config.stale_capacity = static_cast<std::size_t>(
      std::max<std::int64_t>(0, cli.get_int("stale-capacity")));
  router_config.metrics = metrics_on;
  router_config.chaos = &chaos;
  am::fleet::Router router(supervisor, router_config);

  am::service::ServerConfig server_config;
  const auto tcp = am::service::parse_endpoint(cli.get("listen"), &error);
  if (!tcp.has_value()) {
    std::cerr << "am_fleet: --listen: " << error << "\n";
    return 2;
  }
  server_config.listen.push_back(*tcp);
  if (!cli.get("listen-unix").empty()) {
    am::service::Endpoint unix_ep;
    unix_ep.kind = am::service::Endpoint::Kind::kUnix;
    unix_ep.path = cli.get("listen-unix");
    server_config.listen.push_back(unix_ep);
  }
  server_config.service_threads = static_cast<unsigned>(
      std::max<std::int64_t>(1, cli.get_int("service-threads")));
  server_config.metrics = metrics_on;

  am::service::Server server(router, server_config);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  if (!server.start(&error)) {
    std::cerr << "am_fleet: " << error << "\n";
    return 1;
  }
  for (const am::service::Endpoint& ep : server.bound_endpoints()) {
    std::cout << "am_fleet listening on " << ep.to_string() << " ("
              << supervisor.worker_count() << " workers, runtime "
              << runtime_dir << ")\n";
  }
  std::cout.flush();

  server.wait();
  // The drain already cascaded through Router::on_drain(); this is the
  // idempotent backstop for error paths.
  supervisor.drain();

  std::cout << server.stats_json() << "\n";
  return 0;
}
