// am_client: one-shot CLI client for an am_serve daemon.
//
// Builds one am-serve/1 request from flags (or sends --raw verbatim),
// prints each response line to stdout and exits 0 iff every response was a
// success envelope.
//
//   am_client --connect=127.0.0.1:7787 --kind=ping
//   am_client --kind=predict --machine=xeon --mode=shared --prim=FAA \
//             --threads=16 --work=100
//   am_client --kind=advise --target=lock --threads=32 --critical=200
//   am_client --kind=simulate --prim=CAS --threads=8 --repeat=2
//   am_client --raw='{"kind":"calibrate","machine":"xeon","samples":[...]}'
//   am_client --file=request.json            # request line from disk
//   am_client --kind=run_guest --elf=prog.elf --harts=8 --memory-model=tso

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "common/base64.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "service/client.hpp"

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return static_cast<bool>(in);
}

std::optional<std::string> build_request(const am::CliParser& cli,
                                         std::string* error) {
  const std::string kind = cli.get("kind");
  std::ostringstream os;
  am::JsonWriter w(os);
  w.begin_object();
  w.kv("v", "am-serve/1");
  w.kv("kind", kind);
  if (!cli.get("id").empty()) w.kv("id", cli.get("id"));
  if (kind == "predict" || kind == "simulate") {
    w.kv("machine", cli.get("machine"));
    w.kv("mode", cli.get("mode"));
    w.kv("prim", cli.get("prim"));
    w.kv("threads", static_cast<std::uint64_t>(cli.get_int("threads")));
    w.kv("work", cli.get_double("work"));
    if (cli.get("mode") == "mixed") {
      w.kv("write_fraction", cli.get_double("write-fraction"));
    }
    if (cli.get("mode") == "zipf") {
      w.kv("zipf_lines", cli.get_uint64("zipf-lines"));
      w.kv("zipf_s", cli.get_double("zipf-s"));
    }
    if (kind == "simulate") w.kv("seed", cli.get_uint64("seed"));
  } else if (kind == "advise") {
    w.kv("machine", cli.get("machine"));
    w.kv("target", cli.get("target"));
    w.kv("threads", static_cast<std::uint64_t>(cli.get_int("threads")));
    if (cli.get("target") == "lock") {
      w.kv("critical", cli.get_double("critical"));
      w.kv("outside", cli.get_double("outside"));
    } else {
      w.kv("work", cli.get_double("work"));
    }
  } else if (kind == "run_guest") {
    if (cli.get("elf").empty()) {
      *error = "--kind=run_guest needs --elf=<path>";
      return std::nullopt;
    }
    std::string elf;
    if (!read_file(cli.get("elf"), &elf)) {
      *error = "cannot read " + cli.get("elf");
      return std::nullopt;
    }
    w.kv("machine", cli.get("machine"));
    w.kv("memory_model", cli.get("memory-model"));
    w.kv("harts", static_cast<std::uint64_t>(cli.get_int("harts")));
    w.kv("seed", cli.get_uint64("seed"));
    w.kv("elf", am::base64_encode(elf));
  }
  w.end_object();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using am::CliParser;
  CliParser cli("one-shot client for the am-serve/1 protocol");
  cli.add_flag("connect", "daemon endpoint (host:port or unix:path)",
               "127.0.0.1:7787", CliParser::FlagKind::kEndpoint);
  cli.add_flag("kind",
               "request kind: "
               "ping|stats|metrics|predict|advise|simulate|run_guest",
               "ping");
  cli.add_flag("metrics",
               "shortcut for --kind=metrics; prints the decoded Prometheus "
               "text instead of the JSON envelope",
               "false", CliParser::FlagKind::kBool);
  cli.add_flag("id", "request id echoed back by the daemon", "");
  cli.add_flag("machine", "sim preset: xeon|knl|test", "xeon");
  cli.add_flag("mode", "workload mode: shared|private|mixed|zipf", "shared");
  cli.add_flag("prim", "primitive (LOAD|STORE|SWP|TAS|FAA|CAS|CASLOOP)",
               "FAA");
  cli.add_flag("threads", "thread count", "1", CliParser::FlagKind::kInt);
  cli.add_flag("work", "local work between ops, cycles", "0",
               CliParser::FlagKind::kDouble);
  cli.add_flag("write-fraction", "mixed mode write fraction", "0.1",
               CliParser::FlagKind::kDouble);
  cli.add_flag("zipf-lines", "zipf mode line count", "64",
               CliParser::FlagKind::kUint64);
  cli.add_flag("zipf-s", "zipf exponent", "0.99",
               CliParser::FlagKind::kDouble);
  cli.add_flag("seed", "simulate seed", "1", CliParser::FlagKind::kUint64);
  cli.add_flag("target", "advise target: counter|lock|backoff", "counter");
  cli.add_flag("critical", "advise lock: cycles inside the critical section",
               "100", CliParser::FlagKind::kDouble);
  cli.add_flag("outside", "advise lock: cycles between acquisitions", "0",
               CliParser::FlagKind::kDouble);
  cli.add_flag("raw", "send this JSON line verbatim instead of building one",
               "");
  cli.add_flag("file",
               "send the request line read from this file verbatim "
               "(first line; overrides --raw)",
               "");
  cli.add_flag("elf", "run_guest: path to a static rv32ima ELF binary", "");
  cli.add_flag("memory-model", "run_guest: sc|tso", "sc");
  cli.add_flag("harts", "run_guest: guest hart count", "4",
               CliParser::FlagKind::kInt);
  cli.add_flag("repeat", "send the request this many times", "1",
               CliParser::FlagKind::kInt);
  cli.add_flag("timeout-ms",
               "socket send/recv deadline per request (0 = block forever)",
               "0", CliParser::FlagKind::kInt);
  cli.add_flag("retries",
               "reconnect-and-resend attempts after a transport failure "
               "(exponential backoff with jitter)",
               "0", CliParser::FlagKind::kInt);
  cli.add_flag("retry-backoff-ms",
               "initial retry backoff (doubles per attempt, jittered)", "50",
               CliParser::FlagKind::kInt);
  if (!cli.parse(argc, argv)) return 2;

  std::string error;
  const auto endpoint = am::service::parse_endpoint(cli.get("connect"), &error);
  if (!endpoint.has_value()) {
    std::cerr << "am_client: --connect: " << error << "\n";
    return 2;
  }

  const bool metrics_mode = cli.get_bool("metrics");
  std::string line;
  if (metrics_mode) {
    line = "{\"v\":\"am-serve/1\",\"kind\":\"metrics\"}";
  } else if (!cli.get("file").empty()) {
    // Request body from disk: everything up to the first newline is the
    // request line (the wire format is one line per request).
    std::string raw;
    if (!read_file(cli.get("file"), &raw)) {
      std::cerr << "am_client: cannot read " << cli.get("file") << "\n";
      return 2;
    }
    line = raw.substr(0, raw.find('\n'));
    if (!line.empty() && line.back() == '\r') line.pop_back();
  } else if (!cli.get("raw").empty()) {
    line = cli.get("raw");
  } else {
    const auto built = build_request(cli, &error);
    if (!built.has_value()) {
      std::cerr << "am_client: " << error << "\n";
      return 2;
    }
    line = *built;
  }
  const std::int64_t repeat = std::max<std::int64_t>(1, cli.get_int("repeat"));
  const int retries =
      static_cast<int>(std::max<std::int64_t>(0, cli.get_int("retries")));
  const int backoff_ms = static_cast<int>(
      std::max<std::int64_t>(1, cli.get_int("retry-backoff-ms")));

  am::service::ServiceClient client;
  client.set_timeout_ms(
      static_cast<int>(std::max<std::int64_t>(0, cli.get_int("timeout-ms"))));
  if (!client.connect_retry(*endpoint, retries, backoff_ms,
                            static_cast<std::uint64_t>(::getpid()), &error)) {
    std::cerr << "am_client: " << error << "\n";
    return 1;
  }

  // Per-request retry: a transport failure (timeout, reset, worker restart
  // behind a fleet) closes the stream, backs off with jitter, reconnects
  // and resends. Requests are idempotent, so a resend is safe even if the
  // original was served.
  std::uint64_t jitter_state = static_cast<std::uint64_t>(::getpid());
  const auto jittered_sleep_ms = [&jitter_state](int delay_ms) {
    jitter_state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = jitter_state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const int jitter =
        static_cast<int>(z % static_cast<std::uint64_t>(std::max(1, delay_ms)));
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms + jitter));
  };
  const auto roundtrip_retry =
      [&](const std::string& request,
          std::string* err) -> std::optional<std::string> {
    int delay_ms = backoff_ms;
    for (int attempt = 0;; ++attempt) {
      if (client.connected()) {
        const auto response = client.roundtrip(request, err);
        if (response.has_value()) return response;
        client.close();
      }
      if (attempt >= retries) return std::nullopt;
      jittered_sleep_ms(delay_ms);
      delay_ms = std::min(2000, delay_ms * 2);
      std::string connect_error;  // transient; keep the roundtrip error
      client.connect(*endpoint, &connect_error);
    }
  };

  bool all_ok = true;
  for (std::int64_t i = 0; i < repeat; ++i) {
    const auto response = roundtrip_retry(line, &error);
    if (!response.has_value()) {
      std::cerr << "am_client: " << error << "\n";
      return 1;
    }
    const auto doc = am::JsonValue::parse(*response);
    const am::JsonValue* ok = doc.has_value() ? doc->find("ok") : nullptr;
    if (ok == nullptr || !ok->as_bool()) all_ok = false;
    if (metrics_mode && doc.has_value()) {
      // Unwrap result.text: the scrape payload is Prometheus text, the JSON
      // envelope is just the transport.
      const am::JsonValue* result = doc->find("result");
      const am::JsonValue* text =
          result != nullptr ? result->find("text") : nullptr;
      if (text != nullptr) {
        std::cout << text->as_string();
        continue;
      }
    }
    std::cout << *response << "\n";
  }
  return all_ok ? 0 : 1;
}
