// am_guest: run a compiled RV32IMA binary as a simulator workload.
//
// Loads a statically linked ELF (raw bytes or the corpus hex encoding,
// auto-detected), runs it on the chosen machine preset with one sim core per
// hart, and reports the modeled contention profile: completion cycles,
// per-hart instruction/atomic counts, coherence traffic and energy. With
// --json-out the run is written as an am-run-report/1 document.
//
//   am_guest --elf prog.elf --backend=sim:xeon:tso --harts=8
//   am_guest --corpus spinlock --harts=4 --json-out run.json

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_core/report.hpp"
#include "common/cli.hpp"
#include "guest/corpus.hpp"
#include "guest/runner.hpp"

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return static_cast<bool>(in);
}

/// Raw ELF passes through; anything without the magic is tried as the
/// corpus hex encoding.
bool to_elf_bytes(const std::string& raw, std::vector<std::uint8_t>* out) {
  if (raw.size() >= 4 && raw.compare(0, 4, "\x7f" "ELF") == 0) {
    out->assign(raw.begin(), raw.end());
    return true;
  }
  return am::guest::corpus::from_hex(raw, out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace am;

  CliParser cli(
      "Run a compiled RV32IMA guest binary on the coherence simulator.");
  cli.add_flag("elf", "path to a static rv32ima ELF (or corpus .hex file)");
  cli.add_flag("corpus", "run a built-in corpus program by name instead");
  cli.add_flag("list-corpus", "list built-in corpus programs and exit", "false",
               CliParser::FlagKind::kBool);
  cli.add_flag("backend", "sim:{xeon|knl|test}[:{sc|tso}]", "sim:xeon");
  cli.add_flag("harts", "guest hart count (one sim core each)", "4",
               CliParser::FlagKind::kInt);
  cli.add_flag("seed", "machine + stack-fill seed", "1",
               CliParser::FlagKind::kUint64);
  cli.add_flag("max-cycles", "simulated-cycle budget", "200000000",
               CliParser::FlagKind::kUint64);
  cli.add_flag("max-instructions", "total guest instruction budget", "50000000",
               CliParser::FlagKind::kUint64);
  cli.add_flag("json-out", "write an am-run-report/1 document here");
  cli.add_flag("dump-elf",
               "write the loaded binary as a raw ELF here and exit without "
               "running (corpus extraction for am_client --elf)");
  if (!cli.parse(argc, argv)) return 2;

  if (cli.get_bool("list-corpus")) {
    for (const std::string& name : guest::corpus::names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  std::vector<std::uint8_t> elf;
  std::string source;
  if (!cli.get("corpus").empty()) {
    source = "corpus:" + cli.get("corpus");
    elf = guest::corpus::build(cli.get("corpus"));
    if (elf.empty()) {
      std::fprintf(stderr, "am_guest: unknown corpus program '%s'\n",
                   cli.get("corpus").c_str());
      return 2;
    }
  } else if (!cli.get("elf").empty()) {
    source = cli.get("elf");
    std::string raw;
    if (!read_file(source, &raw)) {
      std::fprintf(stderr, "am_guest: cannot read %s\n", source.c_str());
      return 2;
    }
    if (!to_elf_bytes(raw, &elf)) {
      std::fprintf(stderr, "am_guest: %s is neither an ELF nor corpus hex\n",
                   source.c_str());
      return 2;
    }
  } else {
    std::fprintf(stderr, "am_guest: need --elf or --corpus\n%s",
                 cli.usage().c_str());
    return 2;
  }

  if (!cli.get("dump-elf").empty()) {
    std::ofstream out(cli.get("dump-elf"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(elf.data()),
              static_cast<std::streamsize>(elf.size()));
    if (!out) {
      std::fprintf(stderr, "am_guest: cannot write %s\n",
                   cli.get("dump-elf").c_str());
      return 1;
    }
    return 0;
  }

  guest::GuestRunConfig config;
  config.backend = cli.get("backend");
  config.harts = static_cast<std::uint32_t>(cli.get_int("harts"));
  config.seed = cli.get_uint64("seed");
  config.max_cycles = cli.get_uint64("max-cycles");
  config.guest.max_instructions = cli.get_uint64("max-instructions");

  guest::GuestRunResult result =
      guest::run_guest(elf.data(), elf.size(), config);

  if (!result.stdout_bytes.empty()) {
    std::fwrite(result.stdout_bytes.data(), 1, result.stdout_bytes.size(),
                stdout);
    if (result.stdout_bytes.back() != '\n') std::printf("\n");
  }

  if (!result.error.ok()) {
    std::fprintf(stderr, "am_guest: guest_error %s: %s\n",
                 result.error.code.c_str(), result.error.message.c_str());
    return 1;
  }

  std::printf("guest %s on %s (%s, %u harts, seed %llu)\n", source.c_str(),
              result.machine.c_str(), sim::to_string(result.memory_model),
              result.harts, static_cast<unsigned long long>(result.seed));
  std::printf("  completion: %llu cycles  (%.3f guest IPC, %.2f atomics/kcycle)\n",
              static_cast<unsigned long long>(result.completion_cycles),
              result.instructions_per_cycle(), result.atomics_per_kcycle());
  std::printf("  instructions: %llu  atomics: %llu  yields: %llu  sc-fail: %llu\n",
              static_cast<unsigned long long>(result.total_instructions),
              static_cast<unsigned long long>(result.total_atomics),
              static_cast<unsigned long long>(result.total_yields),
              static_cast<unsigned long long>(result.total_sc_failures));
  for (std::size_t h = 0; h < result.hart_reports.size(); ++h) {
    const guest::HartReport& r = result.hart_reports[h];
    std::printf(
        "  hart %-3zu exit=%u  instret=%-10llu atomics=%-8llu sc-fail=%llu\n",
        h, r.exit_code, static_cast<unsigned long long>(r.instructions),
        static_cast<unsigned long long>(r.atomics),
        static_cast<unsigned long long>(r.sc_failures));
  }
  const sim::RunStats& stats = result.stats;
  std::printf(
      "  coherence: %llu transfers, %llu invalidations, %llu mem fetches\n",
      static_cast<unsigned long long>(stats.transfers[0] + stats.transfers[1] +
                                      stats.transfers[2] + stats.transfers[3]),
      static_cast<unsigned long long>(stats.invalidations),
      static_cast<unsigned long long>(stats.memory_fetches));

  if (!cli.get("json-out").empty()) {
    bench::ReportMeta meta;
    meta.bench = cli.program_name();
    meta.title = "guest run: " + source;
    meta.backend = config.backend;
    meta.machine = result.machine;
    meta.command = cli.command_line();
    bench::WorkloadConfig workload;
    workload.threads = result.harts;
    workload.seed = result.seed;
    std::vector<bench::RecordedRun> runs;
    runs.push_back({workload, guest::to_measured_run(result)});
    if (!bench::write_run_report_file(cli.get("json-out"), meta, nullptr,
                                      runs)) {
      std::fprintf(stderr, "am_guest: cannot write %s\n",
                   cli.get("json-out").c_str());
      return 1;
    }
  }
  return 0;
}
