// am_top: live terminal dashboard for an am_serve daemon.
//
// Polls {"kind":"metrics"} on an interval, parses the Prometheus text the
// daemon returns, and renders the rates the rolling windows expose: request
// throughput, latency quantiles, cache efficiency, and what the embedded
// simulator is doing. am_top is a pure Prometheus *consumer* — everything it
// shows is derivable from a scrape, so any external scraper sees the same
// numbers.
//
//   am_top --connect=127.0.0.1:7787
//   am_top --interval-ms=500 --iterations=10   # bounded run (CI/tests)

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "obs/prometheus.hpp"
#include "service/client.hpp"

namespace {

using am::obs::metrics::PromSample;
using am::obs::metrics::find_sample;

double value_or_zero(const std::vector<PromSample>& samples,
                     std::string_view name,
                     const std::map<std::string, std::string>& labels = {}) {
  return find_sample(samples, name, labels).value_or(0.0);
}

void render(const std::vector<PromSample>& s, const std::string& endpoint) {
  const double uptime = value_or_zero(s, "am_server_uptime_seconds");
  std::printf("am_top — %s   uptime %.0fs   conns %.0f   threads: see stats\n",
              endpoint.c_str(), uptime,
              value_or_zero(s, "am_server_active_connections"));
  std::printf("\n  %-10s %10s %14s %14s %14s\n", "window", "qps", "p50 us",
              "p90 us", "p99 us");
  for (const char* win : {"1s", "10s", "60s"}) {
    std::printf("  %-10s %10.1f %14.1f %14.1f %14.1f\n", win,
                value_or_zero(s, "am_qps", {{"window", win}}),
                value_or_zero(s, "am_request_latency_window_us",
                              {{"window", win}, {"quantile", "0.5"}}),
                value_or_zero(s, "am_request_latency_window_us",
                              {{"window", win}, {"quantile", "0.9"}}),
                value_or_zero(s, "am_request_latency_window_us",
                              {{"window", win}, {"quantile", "0.99"}}));
  }

  std::printf("\n  requests   ");
  for (const char* kind :
       {"predict", "advise", "calibrate", "simulate", "stats", "ping",
        "metrics", "run_guest"}) {
    const double n =
        value_or_zero(s, "am_server_requests_total", {{"kind", kind}});
    if (n > 0.0) std::printf("%s=%.0f  ", kind, n);
  }
  std::printf("\n  errors     parse=%.0f handler=%.0f slow=%.0f\n",
              value_or_zero(s, "am_server_parse_errors_total"),
              value_or_zero(s, "am_server_handler_errors_total"),
              value_or_zero(s, "am_server_slow_requests_total"));

  const double hits = value_or_zero(s, "am_cache_hits_total");
  const double misses = value_or_zero(s, "am_cache_misses_total");
  std::printf("\n  cache      hits=%.0f misses=%.0f evict=%.0f   "
              "hit-ratio 1s=%.2f 10s=%.2f 60s=%.2f\n",
              hits, misses, value_or_zero(s, "am_cache_evictions_total"),
              value_or_zero(s, "am_cache_hit_ratio", {{"window", "1s"}}),
              value_or_zero(s, "am_cache_hit_ratio", {{"window", "10s"}}),
              value_or_zero(s, "am_cache_hit_ratio", {{"window", "60s"}}));

  const double sim_ops = value_or_zero(s, "am_sim_ops_total");
  const double transitions = value_or_zero(s, "am_sim_mesi_transitions_total");
  std::printf("  simulator  runs=%.0f ops=%.0f grants=%.0f   "
              "cycles/s 10s=%.3g   MESI transitions/kop=%.1f\n",
              value_or_zero(s, "am_sim_runs_total"), sim_ops,
              value_or_zero(s, "am_sim_directory_grants_total"),
              value_or_zero(s, "am_sim_cycles_per_second",
                            {{"window", "10s"}}),
              sim_ops > 0.0 ? 1000.0 * transitions / sim_ops : 0.0);
  std::printf("  sweep      started=%.0f ok=%.0f timeout=%.0f\n",
              value_or_zero(s, "am_sweep_points_started_total"),
              value_or_zero(s, "am_sweep_points_total", {{"status", "ok"}}),
              value_or_zero(s, "am_sweep_points_total",
                            {{"status", "timeout"}}));

  // Guest panel: present once the daemon has executed a run_guest request
  // (the counters register on first execution, not at startup).
  if (find_sample(s, "am_guest_runs_total").has_value()) {
    const double guest_runs = value_or_zero(s, "am_guest_runs_total");
    const double guest_instret =
        value_or_zero(s, "am_guest_instructions_total");
    std::printf("  guest      runs=%.0f errors=%.0f instret=%.3g "
                "cycles=%.3g   instret/run=%.3g\n",
                guest_runs, value_or_zero(s, "am_guest_errors_total"),
                guest_instret, value_or_zero(s, "am_guest_cycles_total"),
                guest_runs > 0.0 ? guest_instret / guest_runs : 0.0);
  }

  // Fleet panel: present only when scraping an am_fleet front (the
  // workers-up gauge is registered by the supervisor, not am_serve).
  if (find_sample(s, "am_fleet_workers_up").has_value()) {
    std::printf("\n  fleet      up=%.0f restarts=%.0f deaths=%.0f "
                "probe-fail=%.0f circuit-opens=%.0f\n",
                value_or_zero(s, "am_fleet_workers_up"),
                value_or_zero(s, "am_fleet_restarts_total"),
                value_or_zero(s, "am_fleet_worker_deaths_total"),
                value_or_zero(s, "am_fleet_probe_failures_total"),
                value_or_zero(s, "am_fleet_circuit_opens_total"));
    std::printf("  routing    forwarded=%.0f failover=%.0f shed=%.0f "
                "stale=%.0f promoted=%.0f unavailable=%.0f\n",
                value_or_zero(s, "am_fleet_forwarded_total"),
                value_or_zero(s, "am_fleet_failovers_total"),
                value_or_zero(s, "am_fleet_shed_total"),
                value_or_zero(s, "am_fleet_stale_serves_total"),
                value_or_zero(s, "am_fleet_promoted_total"),
                value_or_zero(s, "am_fleet_unavailable_total"));
    const double chaos = value_or_zero(s, "am_fleet_chaos_kills_total") +
                         value_or_zero(s, "am_fleet_chaos_hangs_total") +
                         value_or_zero(s, "am_fleet_chaos_drops_total") +
                         value_or_zero(s, "am_fleet_chaos_delays_total");
    if (chaos > 0.0) {
      std::printf("  chaos      kills=%.0f hangs=%.0f drops=%.0f delays=%.0f\n",
                  value_or_zero(s, "am_fleet_chaos_kills_total"),
                  value_or_zero(s, "am_fleet_chaos_hangs_total"),
                  value_or_zero(s, "am_fleet_chaos_drops_total"),
                  value_or_zero(s, "am_fleet_chaos_delays_total"));
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using am::CliParser;
  CliParser cli("terminal dashboard over am_serve's Prometheus metrics");
  cli.add_flag("connect", "daemon endpoint (host:port or unix:path)",
               "127.0.0.1:7787", CliParser::FlagKind::kEndpoint);
  cli.add_flag("interval-ms", "poll interval", "1000",
               CliParser::FlagKind::kInt);
  cli.add_flag("iterations", "frames to render before exiting (0 = forever)",
               "0", CliParser::FlagKind::kInt);
  if (!cli.parse(argc, argv)) return 2;

  std::string error;
  const auto endpoint = am::service::parse_endpoint(cli.get("connect"), &error);
  if (!endpoint.has_value()) {
    std::cerr << "am_top: --connect: " << error << "\n";
    return 2;
  }
  const std::int64_t interval_ms =
      std::max<std::int64_t>(50, cli.get_int("interval-ms"));
  const std::int64_t iterations = cli.get_int("iterations");
  const bool tty = ::isatty(STDOUT_FILENO) != 0;

  am::service::ServiceClient client;
  if (!client.connect(*endpoint, &error)) {
    std::cerr << "am_top: " << error << "\n";
    return 1;
  }

  const std::string scrape = "{\"v\":\"am-serve/1\",\"kind\":\"metrics\"}";
  for (std::int64_t frame = 0; iterations == 0 || frame < iterations;
       ++frame) {
    const auto response = client.roundtrip(scrape, &error);
    if (!response.has_value()) {
      std::cerr << "am_top: " << error << "\n";
      return 1;
    }
    const auto doc = am::JsonValue::parse(*response);
    const am::JsonValue* ok = doc.has_value() ? doc->find("ok") : nullptr;
    const am::JsonValue* result = doc.has_value() ? doc->find("result") : nullptr;
    const am::JsonValue* text =
        result != nullptr ? result->find("text") : nullptr;
    if (ok == nullptr || !ok->as_bool() || text == nullptr) {
      std::cerr << "am_top: daemon answered without metrics (old daemon or "
                   "--metrics=false?): "
                << *response << "\n";
      return 1;
    }
    const auto samples =
        am::obs::metrics::parse_prometheus_text(text->as_string());
    if (tty) std::fputs("\x1b[H\x1b[2J", stdout);  // home + clear
    render(samples, cli.get("connect"));
    if (iterations != 0 && frame + 1 >= iterations) break;
    ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
  }
  return 0;
}
