// am_serve: the model-serving daemon.
//
// Exposes the calibrated bouncing model, the design advisor and bounded
// simulator runs over the am-serve/1 newline-delimited JSON protocol (see
// docs/service.md) on TCP and/or Unix-domain sockets. Requests are
// canonicalized and answered through a sharded LRU prediction cache;
// simulate results are additionally cached on disk in the sweep result
// cache format, so a daemon and batch sweeps can share a cache directory.
//
//   am_serve --listen=127.0.0.1:7787 --service-threads=8
//   am_serve --listen=0.0.0.0:0 --listen-unix=/tmp/am.sock \
//            --sweep-cache=results/cache
//
// SIGTERM/SIGINT drain gracefully: stop accepting, finish in-flight
// requests, print final stats to stdout, exit 0.

#include <algorithm>
#include <csignal>
#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/handlers.hpp"
#include "service/server.hpp"

namespace {

extern "C" void on_signal(int) { am::service::Server::request_shutdown(); }

}  // namespace

int main(int argc, char** argv) {
  using am::CliParser;
  CliParser cli(
      "am-serve/1 daemon: model predictions, design advice, calibration and "
      "bounded simulator runs over newline-delimited JSON");
  cli.add_flag("listen", "TCP endpoint to listen on (host:port; port 0 = ephemeral)",
               "127.0.0.1:7787", CliParser::FlagKind::kEndpoint);
  cli.add_flag("listen-unix", "also listen on this Unix-domain socket path",
               "");
  cli.add_flag("service-threads", "worker pool width", "4",
               CliParser::FlagKind::kInt);
  cli.add_flag("cache-capacity",
               "in-memory prediction cache entries (0 disables)", "4096",
               CliParser::FlagKind::kInt);
  cli.add_flag("cache-shards", "prediction cache shard count", "16",
               CliParser::FlagKind::kInt);
  cli.add_flag("sweep-cache",
               "on-disk result cache dir for simulate requests (shared "
               "format with the bench --sweep-cache)",
               "");
  cli.add_flag("max-point-cycles",
               "simulate watchdog budget in simulated cycles "
               "(0 = auto, negative = off)",
               "0", CliParser::FlagKind::kInt);
  cli.add_flag("trace-out",
               "write per-request Chrome trace events to this file", "");
  cli.add_flag("verbose", "log one line per request to stderr", "false",
               CliParser::FlagKind::kBool);
  cli.add_flag("metrics",
               "live telemetry: registry counters, rolling windows and the "
               "{\"kind\":\"metrics\"} Prometheus scrape",
               "true", CliParser::FlagKind::kBool);
  cli.add_flag("slow-request-us",
               "log a structured stderr line for requests slower than this "
               "many microseconds (0 disables)",
               "0", CliParser::FlagKind::kInt);
  if (!cli.parse(argc, argv)) return 2;

  am::service::ServiceConfig core_config;
  core_config.cache_capacity =
      static_cast<std::size_t>(std::max<std::int64_t>(0, cli.get_int("cache-capacity")));
  core_config.cache_shards = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("cache-shards")));
  core_config.sim_cache_dir = cli.get("sweep-cache");
  core_config.max_point_cycles = cli.get_int("max-point-cycles");
  const bool metrics_on = cli.get_bool("metrics");
  core_config.metrics = metrics_on;
  // The global switch gates the simulator/sweep publication points too, so
  // --metrics=false is a true A/B: no fetch-adds anywhere on the hot path.
  am::obs::metrics::set_enabled(metrics_on);
  am::service::ServiceCore core(std::move(core_config));

  am::service::ServerConfig server_config;
  std::string error;
  const auto tcp = am::service::parse_endpoint(cli.get("listen"), &error);
  if (!tcp.has_value()) {
    std::cerr << "am_serve: --listen: " << error << "\n";
    return 2;
  }
  server_config.listen.push_back(*tcp);
  if (!cli.get("listen-unix").empty()) {
    am::service::Endpoint unix_ep;
    unix_ep.kind = am::service::Endpoint::Kind::kUnix;
    unix_ep.path = cli.get("listen-unix");
    server_config.listen.push_back(unix_ep);
  }
  server_config.service_threads = static_cast<unsigned>(
      std::max<std::int64_t>(1, cli.get_int("service-threads")));

  server_config.metrics = metrics_on;
  server_config.slow_request_us =
      static_cast<double>(std::max<std::int64_t>(0, cli.get_int("slow-request-us")));

  // The sink is shared by concurrent workers and any simulate run they
  // dispatch, so whatever backs it gets the mutex wrapper.
  am::obs::TextTraceSink text_sink(std::cerr);
  std::unique_ptr<am::obs::ChromeTraceFileSink> chrome_sink;
  std::unique_ptr<am::obs::SynchronizedTraceSink> shared_sink;
  if (!cli.get("trace-out").empty()) {
    chrome_sink =
        std::make_unique<am::obs::ChromeTraceFileSink>(cli.get("trace-out"));
    if (!chrome_sink->ok()) {
      std::cerr << "am_serve: cannot open --trace-out file: "
                << cli.get("trace-out") << "\n";
      return 2;
    }
    shared_sink =
        std::make_unique<am::obs::SynchronizedTraceSink>(*chrome_sink);
  } else if (cli.get_bool("verbose")) {
    shared_sink = std::make_unique<am::obs::SynchronizedTraceSink>(text_sink);
  }
  if (shared_sink) server_config.trace = shared_sink.get();

  am::service::Server server(core, server_config);
  // Handlers are installed before start() so a drain signal arriving during
  // bind still lands on the self-pipe instead of killing the process.
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  if (!server.start(&error)) {
    std::cerr << "am_serve: " << error << "\n";
    return 1;
  }
  for (const am::service::Endpoint& ep : server.bound_endpoints()) {
    std::cout << "am_serve listening on " << ep.to_string() << "\n";
  }
  std::cout.flush();

  server.wait();

  // Final stats flush — the drain contract's last step.
  std::cout << server.stats_json() << "\n";
  return 0;
}
