// Focused tests of the conformance shrinker: deterministic for a fixed
// seed, never growing the program, preserving the injected failure it is
// chasing, and honoring its re-execution budget. These extend the pinned
// <=10-op fault repros in oracle_test.cpp.
#include <gtest/gtest.h>

#include "conformance/differ.hpp"
#include "sim/config.hpp"

namespace am::conformance {
namespace {

sim::MachineConfig faulty_xeon(sim::FaultInjection fault) {
  sim::MachineConfig cfg = sim::xeon_e5_2x18();
  cfg.fault = fault;
  return cfg;
}

TEST(Shrink, DeterministicForFixedSeed) {
  const sim::MachineConfig cfg =
      faulty_xeon(sim::FaultInjection::kLostUpgradeWrite);
  GenConfig gen;
  const GeneratedProgram original = generate(7, gen);
  ASSERT_FALSE(run_program(cfg, original, 7).report.ok);
  const GeneratedProgram a = shrink(cfg, original, 7);
  const GeneratedProgram b = shrink(cfg, original, 7);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_EQ(a.total_ops(), b.total_ops());
}

TEST(Shrink, NeverGrowsAndPreservesFailure) {
  for (const auto fault : {sim::FaultInjection::kLostUpgradeWrite,
                           sim::FaultInjection::kSkipSharedInvalidate}) {
    const sim::MachineConfig cfg = faulty_xeon(fault);
    for (std::uint64_t seed : {2ull, 7ull, 11ull}) {
      GenConfig gen;
      const GeneratedProgram original = generate(seed, gen);
      if (run_program(cfg, original, seed).report.ok) continue;  // not hit
      const GeneratedProgram small = shrink(cfg, original, seed);
      EXPECT_LE(small.total_ops(), original.total_ops());
      EXPECT_GT(small.total_ops(), 0u);
      // The minimized program must still reproduce the injected fault.
      EXPECT_FALSE(run_program(cfg, small, seed).report.ok)
          << "fault=" << static_cast<int>(fault) << " seed=" << seed
          << " shrunk:\n" << small.describe();
    }
  }
}

TEST(Shrink, PinnedFaultCasesStayTiny) {
  // Regression floor from the original harness acceptance: both injected
  // defects shrink to a handful of ops on seed 1.
  GenConfig gen;
  for (const auto fault : {sim::FaultInjection::kLostUpgradeWrite,
                           sim::FaultInjection::kSkipSharedInvalidate}) {
    const sim::MachineConfig cfg = faulty_xeon(fault);
    const FuzzCase c = fuzz_one(1, gen, cfg);
    ASSERT_FALSE(c.ok) << "fault=" << static_cast<int>(fault);
    EXPECT_FALSE(c.shrunk_report.ok);
    EXPECT_LE(c.shrunk.total_ops(), 10u)
        << "fault=" << static_cast<int>(fault) << " shrunk:\n"
        << c.shrunk.describe();
  }
}

TEST(Shrink, ZeroBudgetReturnsTheProgramUnchanged) {
  const sim::MachineConfig cfg =
      faulty_xeon(sim::FaultInjection::kLostUpgradeWrite);
  GenConfig gen;
  const GeneratedProgram original = generate(7, gen);
  const GeneratedProgram same = shrink(cfg, original, 7, /*budget=*/0);
  EXPECT_EQ(same.describe(), original.describe());
}

TEST(Shrink, ChasesTheFailureUnderAControlledSchedule) {
  // The shrinker re-runs candidates under the same ScheduleSpec as the
  // original failure, so a PCT-found fault stays reproducible while it is
  // minimized.
  const sim::MachineConfig cfg =
      faulty_xeon(sim::FaultInjection::kLostUpgradeWrite);
  ScheduleSpec sched;
  sched.use_pct = true;
  GenConfig gen;
  const GeneratedProgram original = generate(7, gen);
  ASSERT_FALSE(run_program(cfg, original, 7, sched).report.ok);
  const GeneratedProgram small = shrink(cfg, original, 7, 500, sched);
  EXPECT_LE(small.total_ops(), original.total_ops());
  EXPECT_FALSE(run_program(cfg, small, 7, sched).report.ok);
}

}  // namespace
}  // namespace am::conformance
