#include "conformance/generator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace am::conformance {
namespace {

bool same_request(const sim::IssueRequest& a, const sim::IssueRequest& b) {
  return a.prim == b.prim && a.line == b.line &&
         a.work_before == b.work_before && a.store_value == b.store_value &&
         a.cas_expected == b.cas_expected && a.cas_desired == b.cas_desired;
}

bool same_program(const GeneratedProgram& a, const GeneratedProgram& b) {
  if (a.per_core.size() != b.per_core.size()) return false;
  for (std::size_t c = 0; c < a.per_core.size(); ++c) {
    if (a.per_core[c].size() != b.per_core[c].size()) return false;
    for (std::size_t i = 0; i < a.per_core[c].size(); ++i) {
      if (!same_request(a.per_core[c][i], b.per_core[c][i])) return false;
    }
  }
  return true;
}

TEST(Generator, DeterministicPerSeed) {
  GenConfig cfg;
  EXPECT_TRUE(same_program(generate(42, cfg), generate(42, cfg)));
  EXPECT_FALSE(same_program(generate(42, cfg), generate(43, cfg)));
}

TEST(Generator, ShapeMatchesConfig) {
  GenConfig cfg;
  cfg.cores = 3;
  cfg.ops_per_core = 17;
  const GeneratedProgram p = generate(7, cfg);
  ASSERT_EQ(p.cores(), 3u);
  EXPECT_EQ(p.total_ops(), 3u * 17u);
  for (const auto& script : p.per_core) EXPECT_EQ(script.size(), 17u);
}

TEST(Generator, PerCoreStreamsAreIndependent) {
  // Dropping the last core must not reshuffle the remaining cores' scripts;
  // the shrinker relies on this staying true under regeneration.
  GenConfig four;
  four.cores = 4;
  GenConfig three = four;
  three.cores = 3;
  const GeneratedProgram p4 = generate(99, four);
  const GeneratedProgram p3 = generate(99, three);
  for (std::size_t c = 0; c < 3; ++c) {
    ASSERT_EQ(p4.per_core[c].size(), p3.per_core[c].size());
    for (std::size_t i = 0; i < p3.per_core[c].size(); ++i) {
      EXPECT_TRUE(same_request(p4.per_core[c][i], p3.per_core[c][i]));
    }
  }
}

TEST(Generator, SingleLinePatternUsesOneLine) {
  GenConfig cfg;
  cfg.pattern = SharingPattern::kSingleLine;
  const GeneratedProgram p = generate(5, cfg);
  EXPECT_EQ(p.lines(), std::vector<sim::LineId>{0});
}

TEST(Generator, PrivatePatternNeverShares) {
  GenConfig cfg;
  cfg.pattern = SharingPattern::kPrivate;
  cfg.cores = 4;
  const GeneratedProgram p = generate(5, cfg);
  std::set<sim::LineId> seen;
  for (const auto& script : p.per_core) {
    std::set<sim::LineId> mine;
    for (const auto& op : script) mine.insert(op.line);
    ASSERT_EQ(mine.size(), 1u);  // one private line per core
    EXPECT_TRUE(seen.insert(*mine.begin()).second);  // distinct across cores
  }
}

TEST(Generator, PoolPatternsStayInPool) {
  for (const auto pattern :
       {SharingPattern::kUniform, SharingPattern::kZipf}) {
    GenConfig cfg;
    cfg.pattern = pattern;
    cfg.lines = 5;
    const GeneratedProgram p = generate(11, cfg);
    for (const auto& script : p.per_core) {
      for (const auto& op : script) EXPECT_LT(op.line, 5u);
    }
  }
}

TEST(Generator, LoadFractionExtremes) {
  GenConfig cfg;
  cfg.load_fraction = 1.0;
  for (const auto& script : generate(3, cfg).per_core) {
    for (const auto& op : script) EXPECT_EQ(op.prim, Primitive::kLoad);
  }
  cfg.load_fraction = 0.0;
  cfg.store_fraction = 0.0;
  for (const auto& script : generate(3, cfg).per_core) {
    for (const auto& op : script) {
      EXPECT_NE(op.prim, Primitive::kLoad);
      EXPECT_NE(op.prim, Primitive::kStore);
    }
  }
}

TEST(Generator, NeverEmitsCasLoop) {
  GenConfig cfg;
  cfg.cores = 8;
  cfg.ops_per_core = 200;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (const auto& script : generate(seed, cfg).per_core) {
      for (const auto& op : script) EXPECT_NE(op.prim, Primitive::kCasLoop);
    }
  }
}

TEST(Generator, WorkBoundedByMaxWork) {
  GenConfig cfg;
  cfg.max_work = 7;
  for (const auto& script : generate(13, cfg).per_core) {
    for (const auto& op : script) EXPECT_LE(op.work_before, 7u);
  }
}

TEST(Generator, PatternNamesRoundTrip) {
  for (const auto p :
       {SharingPattern::kSingleLine, SharingPattern::kPrivate,
        SharingPattern::kUniform, SharingPattern::kZipf,
        SharingPattern::kMixed}) {
    const auto parsed = parse_pattern(to_string(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(parse_pattern("bogus").has_value());
}

}  // namespace
}  // namespace am::conformance
