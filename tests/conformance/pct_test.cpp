// Tests of the PCT scheduler: schedule derivation is a pure function of
// (seed, depth, expected_steps); picks follow the priority permutation;
// change points demote below everything; and a PCT-steered machine run is
// deterministic and still passes the full SC value oracle (PCT perturbs
// only *which* legal interleaving runs, never the semantics).
#include "conformance/pct.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "conformance/differ.hpp"
#include "sim/config.hpp"

namespace am::conformance {
namespace {

TEST(PctScheduler, PrioritiesAreDistinctAndAboveDemotionBand) {
  PctConfig cfg;
  cfg.seed = 42;
  cfg.depth = 4;
  PctScheduler pct(8, cfg);
  const auto& prio = pct.priorities();
  ASSERT_EQ(prio.size(), 8u);
  std::set<std::uint32_t> distinct(prio.begin(), prio.end());
  EXPECT_EQ(distinct.size(), 8u);
  // Initial priorities all sit at depth..depth+n-1, strictly above every
  // demotion target (depth-1 .. 1).
  EXPECT_EQ(*std::min_element(prio.begin(), prio.end()), cfg.depth);
  EXPECT_EQ(*std::max_element(prio.begin(), prio.end()), cfg.depth + 7);
}

TEST(PctScheduler, SameSeedSameSchedule) {
  PctConfig cfg;
  cfg.seed = 7;
  PctScheduler a(6, cfg);
  PctScheduler b(6, cfg);
  EXPECT_EQ(a.priorities(), b.priorities());
  const std::vector<sim::CoreId> waiters = {3, 0, 5, 2};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.pick(0, waiters), b.pick(0, waiters));
    a.on_step(static_cast<sim::CoreId>(i % 6));
    b.on_step(static_cast<sim::CoreId>(i % 6));
  }
}

TEST(PctScheduler, DifferentSeedsExploreDifferentPermutations) {
  PctConfig a_cfg;
  a_cfg.seed = 1;
  bool differs = false;
  PctScheduler a(8, a_cfg);
  for (std::uint64_t s = 2; s <= 10 && !differs; ++s) {
    PctConfig b_cfg;
    b_cfg.seed = s;
    PctScheduler b(8, b_cfg);
    differs = a.priorities() != b.priorities();
  }
  EXPECT_TRUE(differs);
}

TEST(PctScheduler, PickReturnsTheHighestPriorityWaiter) {
  PctConfig cfg;
  cfg.seed = 5;
  PctScheduler pct(4, cfg);
  const auto& prio = pct.priorities();
  const std::vector<sim::CoreId> waiters = {2, 0, 3, 1};
  const std::size_t pick = pct.pick(0, waiters);
  ASSERT_LT(pick, waiters.size());
  for (const sim::CoreId c : waiters) {
    EXPECT_GE(prio[waiters[pick]], prio[c]);
  }
}

TEST(PctScheduler, ChangePointDemotesBelowEveryone) {
  PctConfig cfg;
  cfg.seed = 9;
  cfg.depth = 3;           // two change points
  cfg.expected_steps = 4;  // force them to land within a few steps
  PctScheduler pct(4, cfg);
  const std::vector<std::uint32_t> initial = pct.priorities();
  for (int i = 0; i < 8; ++i) pct.on_step(0);  // core 0 keeps retiring
  ASSERT_EQ(pct.change_points_applied(), 2u);
  // Core 0 absorbed the last demotion it crossed; its priority now sits in
  // the demotion band, strictly below every initial priority.
  EXPECT_LT(pct.priorities()[0], cfg.depth);
  for (std::size_t c = 1; c < 4; ++c) {
    EXPECT_EQ(pct.priorities()[c], initial[c]);
    EXPECT_GT(pct.priorities()[c], pct.priorities()[0]);
  }
  // Demoted core loses every arbitration against an undemoted one.
  const std::vector<sim::CoreId> waiters = {0, 2};
  EXPECT_EQ(pct.pick(0, waiters), 1u);
}

TEST(PctScheduler, DepthOneMeansNoChangePoints) {
  PctConfig cfg;
  cfg.seed = 3;
  cfg.depth = 1;
  PctScheduler pct(4, cfg);
  for (int i = 0; i < 100; ++i) pct.on_step(static_cast<sim::CoreId>(i % 4));
  EXPECT_EQ(pct.change_points_applied(), 0u);
  EXPECT_EQ(pct.steps(), 100u);
}

TEST(PctScheduler, SteeredRunsStillPassTheScOracle) {
  // PCT only resolves arbitration races; under SC the full value-level
  // oracle must keep passing no matter how adversarial the steering.
  GenConfig gen;
  gen.cores = 4;
  gen.ops_per_core = 32;
  gen.pattern = SharingPattern::kSingleLine;  // maximum arbitration pressure
  ScheduleSpec sched;
  sched.use_pct = true;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const FuzzCase c =
        fuzz_one(seed, gen, sim::test_machine(4), /*do_shrink=*/true, sched);
    EXPECT_TRUE(c.ok) << c.describe("test", gen);
  }
}

TEST(PctScheduler, SteeredRunsAreDeterministic) {
  GenConfig gen;
  gen.cores = 4;
  gen.ops_per_core = 24;
  const GeneratedProgram program = generate(11, gen);
  ScheduleSpec sched;
  sched.use_pct = true;
  sched.seed = 99;
  const RunOutcome a = run_program(sim::test_machine(4), program, 11, sched);
  const RunOutcome b = run_program(sim::test_machine(4), program, 11, sched);
  EXPECT_EQ(a.report.ok, b.report.ok);
  EXPECT_EQ(a.stats.total_ops(), b.stats.total_ops());
  EXPECT_EQ(a.stats.measured_cycles, b.stats.measured_cycles);
  for (std::size_t c = 0; c < a.stats.threads.size(); ++c) {
    EXPECT_EQ(a.stats.threads[c].exec_cycles, b.stats.threads[c].exec_cycles);
    EXPECT_EQ(a.stats.threads[c].wait_cycles, b.stats.threads[c].wait_cycles);
  }
}

TEST(PctScheduler, ReplayLineCarriesScheduleAndVersions) {
  GenConfig gen;
  sim::MachineConfig cfg = sim::xeon_e5_2x18();
  cfg.fault = sim::FaultInjection::kLostUpgradeWrite;
  ScheduleSpec sched;
  sched.use_pct = true;
  sched.depth = 5;
  const FuzzCase c = fuzz_one(1, gen, cfg, /*do_shrink=*/false, sched);
  ASSERT_FALSE(c.ok);
  const std::string line = c.describe("xeon", gen);
  EXPECT_NE(line.find("--sched=pct"), std::string::npos) << line;
  EXPECT_NE(line.find("--sched-seed=1"), std::string::npos) << line;
  EXPECT_NE(line.find("--pct-depth=5"), std::string::npos) << line;
  EXPECT_NE(line.find("--gen-version=1"), std::string::npos) << line;
  EXPECT_NE(line.find("--sched-version=1"), std::string::npos) << line;
}

}  // namespace
}  // namespace am::conformance
