#include "conformance/model_gate.hpp"

#include <gtest/gtest.h>

namespace am::conformance {
namespace {

TEST(ModelGate, PresetsHoldTheirBounds) {
  for (const char* preset : {"xeon", "knl", "test"}) {
    const ModelGateResult r = run_model_gate(preset, /*seed=*/1);
    EXPECT_TRUE(r.ok) << preset << ": " << r.summary();
    EXPECT_EQ(r.points.size(), 8u);
    EXPECT_GT(r.mape, 0.0);  // sim and model never agree exactly
  }
}

TEST(ModelGate, StableAcrossSeeds) {
  for (std::uint64_t seed : {2ull, 17ull, 1234ull}) {
    const ModelGateResult r = run_model_gate("xeon", seed);
    EXPECT_TRUE(r.ok) << "seed=" << seed << ": " << r.summary();
  }
}

TEST(ModelGate, ImpossibleBoundFails) {
  ModelGateOptions opts;
  opts.max_mape = 1e-6;
  const ModelGateResult r = run_model_gate("xeon", 1, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_DOUBLE_EQ(r.bound, 1e-6);
  // A failing summary carries the per-point breakdown for diagnosis.
  EXPECT_NE(r.summary().find("FAILED"), std::string::npos);
  EXPECT_NE(r.summary().find("predicted="), std::string::npos);
}

TEST(ModelGate, DefaultBoundsAreCalibrated) {
  // ~3x the grid MAPE EXPERIMENTS.md reports per preset.
  EXPECT_DOUBLE_EQ(default_mape_bound("xeon"), 0.12);
  EXPECT_DOUBLE_EQ(default_mape_bound("knl"), 0.10);
  EXPECT_DOUBLE_EQ(default_mape_bound("anything-else"), 0.12);
}

TEST(ModelGate, PointsStayInModelDomain) {
  const ModelGateResult r = run_model_gate("knl", 5);
  for (const auto& p : r.points) {
    EXPECT_NE(p.prim, Primitive::kCasLoop);
    EXPECT_GE(p.threads, 2u);
    EXPECT_GT(p.measured_tput, 0.0);
    EXPECT_GT(p.predicted_tput, 0.0);
  }
}

}  // namespace
}  // namespace am::conformance
