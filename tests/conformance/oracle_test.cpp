#include "conformance/oracle.hpp"

#include <gtest/gtest.h>

#include "conformance/differ.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"

namespace am::conformance {
namespace {

TEST(Oracle, CleanRunsConformOnAllPresets) {
  GenConfig gen;
  gen.cores = 4;
  gen.ops_per_core = 32;
  for (const auto& cfg :
       {sim::test_machine(4), sim::xeon_e5_2x18(), sim::knl_64()}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const FuzzCase c = fuzz_one(seed, gen, cfg);
      EXPECT_TRUE(c.ok) << "machine=" << cfg.name << " "
                        << c.describe(cfg.name, gen);
      EXPECT_EQ(c.report.ops_checked,
                static_cast<std::size_t>(gen.cores) * gen.ops_per_core);
    }
  }
}

TEST(Oracle, ReplayIsDeterministic) {
  GenConfig gen;
  const sim::MachineConfig cfg = sim::xeon_e5_2x18();
  const FuzzCase a = fuzz_one(77, gen, cfg);
  const FuzzCase b = fuzz_one(77, gen, cfg);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.report.ops_checked, b.report.ops_checked);
}

TEST(Oracle, DetectsTamperedCompletionOrder) {
  // A healthy machine run whose recorded evidence is then corrupted must
  // fail the check — this pins that the oracle actually compares values
  // rather than rubber-stamping the sim.
  GenConfig gen;
  gen.cores = 2;
  gen.ops_per_core = 16;
  gen.pattern = SharingPattern::kSingleLine;
  const GeneratedProgram program = generate(5, gen);

  sim::MachineConfig cfg = sim::test_machine(2);
  cfg.paranoid_checks = true;
  sim::Machine machine(cfg, 5);
  MultiScriptProgram script(program);
  CompletionRecorder recorder;
  machine.set_sink(&recorder);
  const sim::RunStats stats =
      machine.run(script, 2, /*warmup=*/0, sim::Cycles{1} << 40);
  machine.set_sink(nullptr);

  const ConformanceReport clean = check_conformance(
      program, recorder.ops(), script.results(), machine, stats);
  ASSERT_TRUE(clean.ok) << clean.summary();

  // Corrupt one post-op value: a lost update the sim "didn't notice".
  std::vector<ObservedOp> tampered = recorder.ops();
  ASSERT_FALSE(tampered.empty());
  tampered[tampered.size() / 2].value_after += 1;
  const ConformanceReport bad = check_conformance(
      program, tampered, script.results(), machine, stats);
  EXPECT_FALSE(bad.ok);
  EXPECT_GE(bad.mismatch_count, 1u);

  // Reorder across program order within one core: swap a core's first two
  // completions. The oracle must reject orders that are not interleavings.
  std::vector<ObservedOp> reordered = recorder.ops();
  std::size_t first = reordered.size(), second = reordered.size();
  for (std::size_t i = 0; i < reordered.size(); ++i) {
    if (reordered[i].core != 0) continue;
    if (first == reordered.size()) {
      first = i;
    } else {
      second = i;
      break;
    }
  }
  ASSERT_LT(second, reordered.size());
  std::swap(reordered[first].prim, reordered[second].prim);
  if (reordered[first].prim != reordered[second].prim) {
    const ConformanceReport swapped = check_conformance(
        program, reordered, script.results(), machine, stats);
    EXPECT_FALSE(swapped.ok);
  }
}

TEST(Oracle, CatchesInjectedLostUpgradeWrite) {
  // Acceptance criterion: an intentionally injected coherence bug — a
  // writer on a Shared copy skipping its upgrade and losing the write-back
  // — is caught, and the greedy shrinker reduces the repro to <= 10 ops.
  GenConfig gen;
  sim::MachineConfig cfg = sim::xeon_e5_2x18();
  cfg.fault = sim::FaultInjection::kLostUpgradeWrite;
  const FuzzCase c = fuzz_one(1, gen, cfg);
  ASSERT_FALSE(c.ok);
  EXPECT_GE(c.report.mismatch_count, 1u);
  EXPECT_FALSE(c.shrunk_report.ok);
  EXPECT_LE(c.shrunk.total_ops(), 10u)
      << "shrunk repro:\n" << c.shrunk.describe();
  EXPECT_NE(c.describe("xeon", gen).find("--replay-seed=1"),
            std::string::npos);
}

TEST(Oracle, CatchesInjectedSkipSharedInvalidate) {
  // The second injected defect leaves stale sharers next to an exclusive
  // owner. Values can stay coherent (the directory holds one authoritative
  // copy), so detection comes from the paranoid protocol checker, which the
  // harness forces on for every conformance run.
  GenConfig gen;
  sim::MachineConfig cfg = sim::xeon_e5_2x18();
  cfg.fault = sim::FaultInjection::kSkipSharedInvalidate;
  const FuzzCase c = fuzz_one(1, gen, cfg);
  ASSERT_FALSE(c.ok);
  ASSERT_FALSE(c.report.mismatches.empty());
  EXPECT_NE(c.report.mismatches.front().find("protocol invariant"),
            std::string::npos);
  EXPECT_LE(c.shrunk.total_ops(), 10u);
}

TEST(Oracle, ShrinkPreservesFailureAndMonotonicity) {
  GenConfig gen;
  sim::MachineConfig cfg = sim::xeon_e5_2x18();
  cfg.fault = sim::FaultInjection::kLostUpgradeWrite;
  const GeneratedProgram original = generate(3, gen);
  const RunOutcome out = run_program(cfg, original, 3);
  ASSERT_FALSE(out.report.ok);
  const GeneratedProgram small = shrink(cfg, original, 3);
  EXPECT_LE(small.total_ops(), original.total_ops());
  EXPECT_FALSE(run_program(cfg, small, 3).report.ok);
}

TEST(Oracle, RunProgramCountsEveryOp) {
  GenConfig gen;
  gen.cores = 3;
  gen.ops_per_core = 25;
  const GeneratedProgram program = generate(9, gen);
  const RunOutcome out = run_program(sim::test_machine(4), program, 9);
  EXPECT_TRUE(out.report.ok) << out.report.summary();
  EXPECT_EQ(out.report.ops_checked, 75u);
}

}  // namespace
}  // namespace am::conformance
