// Litmus regression suite: the allowed-outcome sets of the SB / SB+fence /
// MP / LB / IRIW corpus are pinned against golden files (re-blessed with
// AM_REGEN_GOLDEN=1, so a semantic change to the memory models is always a
// reviewable diff), and the runner is exercised under both memory models:
// TSO must reach the store-buffering outcome SC forbids, and neither model
// may ever produce an outcome outside its allowed set.
#include "conformance/litmus.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/config.hpp"

#ifndef AM_LITMUS_DIR
#define AM_LITMUS_DIR "tests/conformance/litmus"
#endif

namespace am::conformance {
namespace {

std::string render_outcomes(const char* tag,
                            const std::set<LitmusOutcome>& outcomes) {
  std::ostringstream os;
  for (const auto& o : outcomes) {
    os << tag << ':';
    for (const std::uint64_t v : o) os << ' ' << v;
    os << '\n';
  }
  return os.str();
}

/// Canonical text form of a test's allowed sets — the golden file contents.
std::string render_allowed(const LitmusTest& t) {
  std::ostringstream os;
  os << "litmus " << t.name << '\n'
     << render_outcomes("sc", t.allowed_sc)
     << render_outcomes("tso", t.allowed_tso);
  if (t.tso_signature.empty()) {
    os << "signature: none\n";
  } else {
    os << "signature:";
    for (const std::uint64_t v : t.tso_signature) os << ' ' << v;
    os << '\n';
  }
  return os.str();
}

TEST(Litmus, CorpusShape) {
  const auto corpus = litmus_corpus();
  ASSERT_EQ(corpus.size(), 5u);
  EXPECT_EQ(corpus[0].name, "sb");
  EXPECT_EQ(corpus[1].name, "sb_fenced");
  EXPECT_EQ(corpus[2].name, "mp");
  EXPECT_EQ(corpus[3].name, "lb");
  EXPECT_EQ(corpus[4].name, "iriw");
  for (const auto& t : corpus) {
    EXPECT_FALSE(t.allowed_sc.empty()) << t.name;
    // Any SC execution is a TSO execution (drain eagerly), so TSO's allowed
    // set must contain SC's.
    for (const auto& o : t.allowed_sc) {
      EXPECT_TRUE(t.allowed_tso.count(o)) << t.name << " missing "
                                          << format_outcome(o);
    }
    // A declared signature must separate the models.
    if (!t.tso_signature.empty()) {
      EXPECT_TRUE(t.allowed_tso.count(t.tso_signature)) << t.name;
      EXPECT_FALSE(t.allowed_sc.count(t.tso_signature)) << t.name;
    }
  }
}

TEST(Litmus, AllowedSetsMatchGoldenFiles) {
  for (const LitmusTest& t : litmus_corpus()) {
    const std::string actual = render_allowed(t);
    const std::string path =
        std::string(AM_LITMUS_DIR) + "/" + t.name + ".expected";
    if (std::getenv("AM_REGEN_GOLDEN") != nullptr) {
      std::ofstream out(path, std::ios::binary);
      ASSERT_TRUE(out.good()) << "cannot write golden " << path;
      out << actual;
      continue;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden " << path
        << " (run with AM_REGEN_GOLDEN=1 to bless)";
    std::stringstream want;
    want << in.rdbuf();
    EXPECT_EQ(actual, want.str())
        << t.name << ": allowed-outcome sets changed; if deliberate, "
        << "re-bless with AM_REGEN_GOLDEN=1 and review the diff";
  }
}

TEST(Litmus, TsoReachesTheWeakOutcomeAndStaysInBounds) {
  LitmusRunOptions opts;
  opts.model = sim::MemoryModel::kTso;
  opts.seeds = 32;
  const sim::MachineConfig cfg = sim::test_machine(4);
  for (const LitmusTest& t : litmus_corpus()) {
    const LitmusRunResult r = run_litmus(t, cfg, "test", opts);
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_EQ(r.runs, 32u);
    if (t.name == "sb") {
      EXPECT_TRUE(r.signature_seen)
          << "TSO store buffering never produced (0,0): " << r.summary();
    }
  }
}

TEST(Litmus, ScForbidsTheStoreBufferingOutcome) {
  LitmusRunOptions opts;
  opts.model = sim::MemoryModel::kSc;
  opts.seeds = 32;
  const sim::MachineConfig cfg = sim::test_machine(4);
  for (const LitmusTest& t : litmus_corpus()) {
    const LitmusRunResult r = run_litmus(t, cfg, "test", opts);
    EXPECT_TRUE(r.ok) << r.summary();
    if (t.name == "sb") {
      EXPECT_FALSE(r.signature_seen) << "SC produced the TSO-only outcome";
      EXPECT_EQ(r.seen.count({0, 0}), 0u);
    }
  }
}

TEST(Litmus, RunsWithoutPctStillConform) {
  // The configured arbitration policy (no steering) must also stay within
  // the allowed sets — PCT only widens coverage, it is not load-bearing for
  // correctness.
  LitmusRunOptions opts;
  opts.model = sim::MemoryModel::kTso;
  opts.use_pct = false;
  opts.seeds = 8;
  const sim::MachineConfig cfg = sim::test_machine(4);
  for (const LitmusTest& t : litmus_corpus()) {
    const LitmusRunResult r = run_litmus(t, cfg, "test", opts);
    EXPECT_TRUE(r.ok) << r.summary();
  }
}

TEST(Litmus, ViolationMessageEmbedsAReplayLine) {
  // Force a violation by declaring an impossible allowed set; the failure
  // text must carry a complete one-line repro including the schedule.
  LitmusTest t = litmus_corpus().front();
  t.allowed_sc.clear();
  t.allowed_tso.clear();
  LitmusRunOptions opts;
  opts.model = sim::MemoryModel::kTso;
  opts.seeds = 1;
  opts.first_seed = 17;
  const LitmusRunResult r =
      run_litmus(t, sim::test_machine(4), "test", opts);
  ASSERT_FALSE(r.ok);
  ASSERT_FALSE(r.violations.empty());
  const std::string& v = r.violations.front();
  EXPECT_NE(v.find("replay: conformance_fuzz --litmus"), std::string::npos)
      << v;
  EXPECT_NE(v.find("--litmus-first-seed=17"), std::string::npos) << v;
  EXPECT_NE(v.find("--memory-model=tso"), std::string::npos) << v;
  EXPECT_NE(v.find("--sched-version=1"), std::string::npos) << v;
}

TEST(Litmus, FencedSbCollapsesToTheScSet) {
  // The whole point of the fence: under TSO the fenced variant must never
  // show the weak outcome.
  const auto corpus = litmus_corpus();
  const LitmusTest& fenced = corpus[1];
  LitmusRunOptions opts;
  opts.model = sim::MemoryModel::kTso;
  opts.seeds = 32;
  const LitmusRunResult r =
      run_litmus(fenced, sim::test_machine(4), "test", opts);
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_EQ(r.seen.count({0, 0}), 0u)
      << "fenced SB produced the unfenced weak outcome";
}

}  // namespace
}  // namespace am::conformance
