// End-to-end: the full workflow a user of the library runs — pick a
// machine, calibrate the model from black-box measurements, predict, and
// act on the advice — all through public APIs only.
#include <gtest/gtest.h>

#include "bench_core/backend.hpp"
#include "bench_core/sim_backend.hpp"
#include "locks/lock_programs.hpp"
#include "model/advisor.hpp"
#include "model/bouncing_model.hpp"
#include "model/calibrate.hpp"
#include "model/validate.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"

namespace am {
namespace {

TEST(EndToEnd, CalibratePredictValidateOnXeon) {
  sim::MachineConfig cfg = sim::xeon_e5_2x18();
  cfg.arbitration = sim::Arbitration::kFifo;
  bench::SimBackend backend(cfg);

  // 1. Calibrate the model from measurements only.
  const model::ModelParams skeleton = model::ModelParams::from_machine(cfg);
  const model::Calibration cal = model::calibrate(backend, skeleton);
  ASSERT_TRUE(cal.ok) << cal.log;

  // 2. Validate across a grid.
  const model::BouncingModel m(cal.apply_to(skeleton));
  model::ValidationOptions opts;
  opts.primitives = {Primitive::kFaa, Primitive::kSwap, Primitive::kCasLoop};
  opts.thread_counts = {2, 8, 24};
  opts.work_values = {0.0, 1000.0};
  const model::ValidationReport report = model::validate(backend, m, opts);
  EXPECT_LT(report.mape_throughput, 0.15)
      << "calibrated model should track the machine";
}

TEST(EndToEnd, AdvisorPrefersWhatTheMachineConfirms) {
  // The advisor says FAA beats a CAS loop at high thread counts; the
  // machine must agree when we actually run both.
  sim::MachineConfig cfg = sim::xeon_e5_2x18();
  bench::SimBackend backend(cfg);
  const model::BouncingModel m(model::ModelParams::from_machine(cfg));

  const model::Advice advice = model::advise_counter(m, 32, 0.0);
  // Sharding tops the ranking when the contract allows it; among the
  // single-cell options FAA must beat the CAS loop.
  EXPECT_EQ(advice.recommended, "sharded");
  double adv_faa = 0.0;
  double adv_loop = 0.0;
  for (const auto& o : advice.options) {
    if (o.name == "FAA") adv_faa = o.throughput_mops;
    if (o.name == "CAS-loop") adv_loop = o.throughput_mops;
  }
  EXPECT_GT(adv_faa, 3.0 * adv_loop);

  bench::WorkloadConfig faa;
  faa.mode = bench::WorkloadMode::kHighContention;
  faa.prim = Primitive::kFaa;
  faa.threads = 32;
  bench::WorkloadConfig loop = faa;
  loop.prim = Primitive::kCasLoop;
  const auto r_faa = backend.run(faa);
  const auto r_loop = backend.run(loop);
  EXPECT_GT(r_faa.throughput_ops_per_kcycle(),
            3.0 * r_loop.throughput_ops_per_kcycle());
}

TEST(EndToEnd, BackoffAdviceImprovesCasLoop) {
  // Insert the model-recommended backoff between CAS-loop retries via the
  // workload's work parameter and check completed-op fairness improves
  // and per-op acquisition cost drops.
  sim::MachineConfig cfg = sim::test_machine(8);
  bench::SimBackend backend(cfg);
  const model::BouncingModel m(model::ModelParams::from_machine(cfg));
  const double backoff = model::recommended_backoff_cycles(m, 8);

  bench::WorkloadConfig raw;
  raw.mode = bench::WorkloadMode::kHighContention;
  raw.prim = Primitive::kCasLoop;
  raw.threads = 8;
  bench::WorkloadConfig paced = raw;
  paced.work = static_cast<bench::Cycles>(backoff);
  paced.work_jitter = 0.5;  // backoff must be randomized to desynchronize

  const auto r_raw = backend.run(raw);
  const auto r_paced = backend.run(paced);
  EXPECT_LT(r_paced.attempts_per_op(), r_raw.attempts_per_op() * 0.5);
  EXPECT_GT(r_paced.jain_fairness(), r_raw.jain_fairness());
}

TEST(EndToEnd, LockAdviceMatchesSimulatedLocks) {
  // Advisor ranking vs. the protocols actually executed on the machine.
  sim::MachineConfig cfg = sim::xeon_e5_2x18();
  const model::BouncingModel m(model::ModelParams::from_machine(cfg));
  const model::Advice advice = model::advise_lock(m, 24, 100.0, 100.0);

  locks::LockWorkload wl;
  wl.critical_work = 100;
  wl.outside_work = 100;
  auto acquisitions = [&](auto make_prog, locks::LockKind kind) {
    sim::Machine machine(cfg);
    auto prog = make_prog();
    const sim::RunStats st = machine.run(prog, 24, 50'000, 400'000);
    return locks::LockProgramBase::acquisitions(st, kind);
  };
  const auto tas = acquisitions(
      [&] { return locks::TasLockProgram(wl); }, locks::LockKind::kTas);
  const auto mcs = acquisitions(
      [&] { return locks::McsLockProgram(wl); }, locks::LockKind::kMcs);

  // Both the model and the machine agree TAS loses to MCS at 24 threads.
  EXPECT_NE(advice.recommended, "TAS");
  EXPECT_GT(mcs, tas);
}

TEST(EndToEnd, TwoMachinesSameShapeDifferentMagnitude) {
  // The paper's cross-architecture claim: both machines show the FAA
  // plateau, but KNL's plateau sits lower (slower transfers, slower clock).
  bench::SimBackend xeon(sim::xeon_e5_2x18());
  bench::SimBackend knl(sim::knl_64());
  bench::WorkloadConfig w;
  w.mode = bench::WorkloadMode::kHighContention;
  w.prim = Primitive::kFaa;

  w.threads = 8;
  const double x8 = xeon.run(w).throughput_mops();
  const double k8 = knl.run(w).throughput_mops();
  w.threads = 32;
  const double x32 = xeon.run(w).throughput_mops();
  const double k32 = knl.run(w).throughput_mops();

  EXPECT_NEAR(x32, x8, x8 * 0.25);  // plateau on Xeon
  EXPECT_NEAR(k32, k8, k8 * 0.25);  // plateau on KNL
  EXPECT_GT(x8, 2.0 * k8);          // Xeon's plateau is much higher
}

}  // namespace
}  // namespace am
