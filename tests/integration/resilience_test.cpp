// Crash/resume integration test: a sweep SIGKILLed mid-run leaves a valid
// (possibly torn) journal, and the rerun re-executes only the unfinished
// points while producing a report byte-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_core/report.hpp"
#include "bench_core/sim_backend.hpp"
#include "bench_core/sweep.hpp"
#include "sim/config.hpp"

namespace am::bench {
namespace {

constexpr SimBackendOptions kFastSim{2'000, 10'000};
constexpr int kPoints = 10;

// A sim backend that dawdles before each run so the parent can SIGKILL the
// child mid-sweep. The delay never touches cache_identity() or the result,
// so slow (child) and fast (rerun) sweeps share journal keys and bytes.
class SlowSimBackend final : public ExecutionBackend {
 public:
  SlowSimBackend(std::uint64_t seed, int delay_ms)
      : inner_(sim::preset_by_name("test"), kFastSim, seed),
        delay_ms_(delay_ms) {}
  std::string name() const override { return inner_.name(); }
  std::string machine_name() const override { return inner_.machine_name(); }
  std::uint32_t max_threads() const override { return inner_.max_threads(); }
  double freq_ghz() const override { return inner_.freq_ghz(); }
  std::string cache_identity() const override {
    return inner_.cache_identity();
  }

 protected:
  MeasuredRun do_run(const WorkloadConfig& config) override {
    if (delay_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    }
    // The outer run() records; the inner one must not double-record into
    // the global log, so give it a scratch recorder.
    std::vector<RecordedRun> scratch;
    inner_.set_run_recorder(&scratch);
    return inner_.run(config);
  }

 private:
  SimBackend inner_;
  int delay_ms_;
};

std::vector<WorkloadConfig> grid() {
  std::vector<WorkloadConfig> g;
  for (int i = 0; i < kPoints; ++i) {
    WorkloadConfig w;
    w.mode = WorkloadMode::kHighContention;
    w.prim = i % 2 == 0 ? Primitive::kFaa : Primitive::kCasLoop;
    w.threads = 2 + static_cast<std::uint32_t>(i % 3);
    w.work = static_cast<Cycles>(10 * i);
    g.push_back(w);
  }
  return g;
}

struct SweepCounts {
  std::size_t executed = 0;
  std::size_t journal_hits = 0;
};

std::string run_sweep(const std::string& journal_path, int delay_ms,
                      SweepCounts* counts = nullptr) {
  clear_run_log();
  SweepOptions opts;
  opts.jobs = 1;  // deterministic kill point: the journal fills in order
  opts.base_seed = 11;
  opts.journal_path = journal_path;
  SweepEngine engine(
      [delay_ms](std::uint64_t seed) -> std::unique_ptr<ExecutionBackend> {
        return std::make_unique<SlowSimBackend>(seed, delay_ms);
      },
      opts);
  for (const WorkloadConfig& w : grid()) engine.submit(w);
  engine.drain();
  if (counts != nullptr) {
    counts->executed = engine.executed_points();
    counts->journal_hits = engine.journal_hits();
  }

  ReportMeta meta;
  meta.bench = "resilience_test";
  meta.title = "kill-resume";
  meta.backend = "sim:test";
  meta.machine = "test";
  meta.command = "resilience_test";
  meta.wall_time_s = 0.0;
  std::ostringstream os;
  write_run_report(os, meta, nullptr, run_log());
  clear_run_log();
  return os.str();
}

std::size_t journal_entry_count(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line.front() == '{') ++n;
  }
  return n;
}

TEST(KillResume, RerunSkipsJournaledPointsAndMatchesByteForByte) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("am_resilience_" +
                    std::to_string(static_cast<unsigned long>(::getpid())));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Uninterrupted baseline with its own journal.
  SweepCounts counts;
  const std::string baseline =
      run_sweep((dir / "baseline.journal").string(), 0, &counts);
  ASSERT_EQ(counts.executed, static_cast<std::size_t>(kPoints));

  const std::string killed_journal = (dir / "killed.journal").string();
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: same sweep, slowed so the parent can kill it mid-run. _exit on
    // the off chance it finishes — the rerun assertions stay valid either
    // way, though the poll below kills it long before.
    (void)run_sweep(killed_journal, 150);
    ::_exit(0);
  }

  // Wait for ~half the sweep to land in the journal, then SIGKILL.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (journal_entry_count(killed_journal) < kPoints / 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);
  ASSERT_GE(journal_entry_count(killed_journal), 1u)
      << "child never journaled anything; cannot test resume";

  // Resume: only the unfinished points execute, and the report is
  // byte-identical to the uninterrupted baseline.
  const std::string resumed = run_sweep(killed_journal, 0, &counts);
  EXPECT_GE(counts.journal_hits, 1u);
  EXPECT_EQ(counts.executed + counts.journal_hits,
            static_cast<std::size_t>(kPoints));
  EXPECT_EQ(counts.executed, kPoints - counts.journal_hits)
      << "a completed point was re-executed after the crash";
  EXPECT_EQ(resumed, baseline);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace am::bench
