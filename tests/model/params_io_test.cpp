#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "model/bouncing_model.hpp"
#include "model/params_io.hpp"
#include "sim/config.hpp"

namespace am::model {
namespace {

TEST(ParamsIo, RoundTripsExactly) {
  const ModelParams orig = ModelParams::from_machine(sim::knl_64());
  std::stringstream buffer;
  save_params(orig, buffer);
  const auto loaded = load_params(buffer);
  ASSERT_TRUE(loaded.has_value());

  EXPECT_EQ(loaded->machine, orig.machine);
  EXPECT_EQ(loaded->cores, orig.cores);
  EXPECT_DOUBLE_EQ(loaded->freq_ghz, orig.freq_ghz);
  EXPECT_DOUBLE_EQ(loaded->l1_hit, orig.l1_hit);
  EXPECT_EQ(loaded->exec_cost, orig.exec_cost);
  EXPECT_EQ(loaded->transfer, orig.transfer);
  EXPECT_EQ(loaded->hops, orig.hops);
  EXPECT_EQ(loaded->is_far, orig.is_far);
  EXPECT_EQ(loaded->distance, orig.distance);
  EXPECT_EQ(loaded->arbitration, orig.arbitration);
  EXPECT_DOUBLE_EQ(loaded->arbitration_bias, orig.arbitration_bias);
  EXPECT_DOUBLE_EQ(loaded->energy.memory_nj, orig.energy.memory_nj);
}

TEST(ParamsIo, LoadedModelPredictsIdentically) {
  const ModelParams orig = ModelParams::from_machine(sim::xeon_e5_2x18());
  std::stringstream buffer;
  save_params(orig, buffer);
  const auto loaded = load_params(buffer);
  ASSERT_TRUE(loaded.has_value());

  const BouncingModel a(orig);
  const BouncingModel b(*loaded);
  for (std::uint32_t n : {1u, 8u, 36u}) {
    const Prediction pa = a.predict(Primitive::kCasLoop, n, 500.0);
    const Prediction pb = b.predict(Primitive::kCasLoop, n, 500.0);
    EXPECT_DOUBLE_EQ(pa.throughput_ops_per_kcycle,
                     pb.throughput_ops_per_kcycle);
    EXPECT_DOUBLE_EQ(pa.fairness_jain, pb.fairness_jain);
    EXPECT_DOUBLE_EQ(pa.energy_per_op_nj, pb.energy_per_op_nj);
  }
}

TEST(ParamsIo, RejectsGarbage) {
  std::stringstream bad("not-a-params-file at all");
  EXPECT_EQ(load_params(bad), std::nullopt);
  std::stringstream empty;
  EXPECT_EQ(load_params(empty), std::nullopt);
}

TEST(ParamsIo, RejectsTruncation) {
  const ModelParams orig = ModelParams::from_machine(sim::test_machine(4));
  std::stringstream buffer;
  save_params(orig, buffer);
  const std::string full = buffer.str();
  // Chop the file at several points; every prefix must be rejected.
  for (std::size_t cut : {full.size() / 4, full.size() / 2,
                          full.size() - 10}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_EQ(load_params(truncated), std::nullopt) << "cut=" << cut;
  }
}

TEST(ParamsIo, RejectsInconsistentMatrixSizes) {
  const ModelParams orig = ModelParams::from_machine(sim::test_machine(4));
  std::stringstream buffer;
  save_params(orig, buffer);
  std::string text = buffer.str();
  // Claim more cores than the matrices carry.
  const auto pos = text.find("cores 4");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 7, "cores 9");
  std::stringstream corrupted(text);
  EXPECT_EQ(load_params(corrupted), std::nullopt);
}

TEST(ParamsIo, FileHelpers) {
  const std::string path = "/tmp/am_params_io_test.amp";
  const ModelParams orig = ModelParams::from_machine(sim::test_machine(8));
  ASSERT_TRUE(save_params_file(orig, path));
  const auto loaded = load_params_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->cores, 8u);
  std::remove(path.c_str());
  EXPECT_EQ(load_params_file("/nonexistent/params.amp"), std::nullopt);
  EXPECT_FALSE(save_params_file(orig, "/nonexistent-dir/params.amp"));
}

}  // namespace
}  // namespace am::model
