// Calibration must recover the simulated machine's configured parameters
// from black-box measurements alone.
#include <gtest/gtest.h>

#include "bench_core/sim_backend.hpp"
#include "model/bouncing_model.hpp"
#include "model/calibrate.hpp"
#include "sim/config.hpp"

namespace am::model {
namespace {

TEST(Calibrate, RecoversUniformMachineCosts) {
  sim::MachineConfig cfg = sim::test_machine(8, 100, 4, 200);
  bench::SimBackend backend(cfg);
  const ModelParams skeleton = ModelParams::from_machine(cfg);
  const Calibration cal = calibrate(backend, skeleton);
  ASSERT_TRUE(cal.ok) << cal.log;

  // Local costs: l1 + exec (4 + 10 for RMWs, 4 + 1 for load/store).
  EXPECT_NEAR(cal.local_cost[static_cast<int>(Primitive::kFaa)], 14.0, 1.0);
  EXPECT_NEAR(cal.local_cost[static_cast<int>(Primitive::kLoad)], 5.0, 1.0);
  // Transfer cost: 100 cycles, single class.
  EXPECT_NEAR(cal.t_near, 100.0, 5.0);
  EXPECT_DOUBLE_EQ(cal.t_near, cal.t_far);
}

TEST(Calibrate, RecoversTwoSocketCosts) {
  sim::MachineConfig cfg = sim::xeon_e5_2x18();
  cfg.arbitration = sim::Arbitration::kFifo;  // identifiable mixture
  bench::SimBackend backend(cfg);
  const ModelParams skeleton = ModelParams::from_machine(cfg);
  const Calibration cal = calibrate(backend, skeleton);
  ASSERT_TRUE(cal.ok) << cal.log;
  EXPECT_NEAR(cal.t_near, 70.0, 8.0) << cal.log;
  EXPECT_NEAR(cal.t_far, 180.0, 40.0) << cal.log;
  EXPECT_GT(cal.fit_r_squared, 0.95);
}

TEST(Calibrate, AppliedParamsPredictWell) {
  sim::MachineConfig cfg = sim::xeon_e5_2x18();
  cfg.arbitration = sim::Arbitration::kFifo;
  bench::SimBackend backend(cfg);
  const ModelParams skeleton = ModelParams::from_machine(cfg);
  const Calibration cal = calibrate(backend, skeleton);
  ASSERT_TRUE(cal.ok);

  const BouncingModel model(cal.apply_to(skeleton));
  bench::WorkloadConfig w;
  w.mode = bench::WorkloadMode::kHighContention;
  w.prim = Primitive::kSwap;  // a primitive the transfer fit did not use
  w.threads = 24;
  const auto run = backend.run(w);
  const Prediction pred = model.predict(Primitive::kSwap, 24, 0.0);
  const double err = std::fabs(pred.throughput_ops_per_kcycle -
                               run.throughput_ops_per_kcycle()) /
                     run.throughput_ops_per_kcycle();
  EXPECT_LT(err, 0.15) << cal.log;
}

TEST(Calibrate, ApplyToOverwritesCostsKeepsStructure) {
  const ModelParams skeleton =
      ModelParams::from_machine(sim::xeon_e5_2x18());
  Calibration cal;
  cal.ok = true;
  cal.t_near = 50.0;
  cal.t_far = 500.0;
  cal.local_cost.fill(10.0);
  const ModelParams applied = cal.apply_to(skeleton);
  EXPECT_DOUBLE_EQ(applied.transfer_between(0, 1), 50.0);
  EXPECT_DOUBLE_EQ(applied.transfer_between(0, 20), 500.0);
  EXPECT_DOUBLE_EQ(applied.transfer_between(3, 3), 0.0);
  EXPECT_DOUBLE_EQ(applied.exec_cost[0], 10.0 - skeleton.l1_hit);
  EXPECT_EQ(applied.arbitration, skeleton.arbitration);
}

TEST(Calibrate, MeshHopFitBeatsTwoClassFit) {
  sim::MachineConfig cfg = sim::knl_64();
  cfg.arbitration = sim::Arbitration::kFifo;
  bench::SimBackend backend(cfg);
  const ModelParams skeleton = ModelParams::from_machine(cfg);
  const Calibration cal = calibrate(backend, skeleton);
  ASSERT_TRUE(cal.ok) << cal.log;
  ASSERT_TRUE(cal.hop_fit) << cal.log;
  EXPECT_GT(cal.hop_fit_r_squared, cal.fit_r_squared);
  EXPECT_GT(cal.t_per_hop, 0.0);

  // The hop-fitted model must predict an unseen workload tightly.
  const BouncingModel model(cal.apply_to(skeleton));
  bench::WorkloadConfig w;
  w.mode = bench::WorkloadMode::kHighContention;
  w.prim = Primitive::kSwap;
  w.threads = 40;
  const auto run = backend.run(w);
  const Prediction pred = model.predict(Primitive::kSwap, 40, 0.0);
  const double err = std::fabs(pred.throughput_ops_per_kcycle -
                               run.throughput_ops_per_kcycle()) /
                     run.throughput_ops_per_kcycle();
  EXPECT_LT(err, 0.1) << cal.log;
}

TEST(Calibrate, NoHopFitOnTwoSocketMachines) {
  // The two-socket topology has essentially constant hop counts in the
  // rotation; the two-class fit is already exact and must be kept.
  sim::MachineConfig cfg = sim::xeon_e5_2x18();
  cfg.arbitration = sim::Arbitration::kFifo;
  bench::SimBackend backend(cfg);
  const ModelParams skeleton = ModelParams::from_machine(cfg);
  const Calibration cal = calibrate(backend, skeleton);
  ASSERT_TRUE(cal.ok);
  // Either no hop fit, or one that did not displace a near-perfect fit.
  if (cal.hop_fit) {
    EXPECT_GT(cal.hop_fit_r_squared, 0.99);
  } else {
    EXPECT_GT(cal.fit_r_squared, 0.99);
  }
}

TEST(Calibrate, CustomSweepHonoured) {
  sim::MachineConfig cfg = sim::test_machine(4, 80);
  bench::SimBackend backend(cfg);
  CalibrationOptions opts;
  opts.sweep_threads = {2, 4};
  const Calibration cal =
      calibrate(backend, ModelParams::from_machine(cfg), opts);
  ASSERT_TRUE(cal.ok);
  EXPECT_NEAR(cal.t_near, 80.0, 5.0);
}

}  // namespace
}  // namespace am::model
