#include <gtest/gtest.h>

#include <cmath>

#include "model/advisor.hpp"
#include "sim/config.hpp"

namespace am::model {
namespace {

BouncingModel xeon_model() {
  return BouncingModel(ModelParams::from_machine(sim::xeon_e5_2x18()));
}

TEST(CounterAdvice, ShardingWinsThenFaaUnderContention) {
  const Advice a = advise_counter(xeon_model(), 32, 0.0);
  // Sharding sidesteps the bounce entirely, so it tops the ranking; among
  // the single-cell options FAA must beat the CAS loop and the lock.
  EXPECT_EQ(a.recommended, "sharded");
  ASSERT_EQ(a.options.size(), 4u);
  for (std::size_t i = 0; i + 1 < a.options.size(); ++i) {
    EXPECT_GE(a.options[i].throughput_mops, a.options[i + 1].throughput_mops);
  }
  double faa = 0.0;
  double loop = 0.0;
  double lock = 0.0;
  for (const auto& o : a.options) {
    if (o.name == "FAA") faa = o.throughput_mops;
    if (o.name == "CAS-loop") loop = o.throughput_mops;
    if (o.name == "lock+inc") lock = o.throughput_mops;
  }
  EXPECT_GT(faa, loop);
  EXPECT_GT(faa, lock);
  EXPECT_FALSE(a.rationale.empty());
}

TEST(CounterAdvice, ShardedPredictionScalesWithShards) {
  const BouncingModel m = xeon_model();
  const double k1 = predict_sharded_counter_mops(m, 32, 0.0, 1);
  const double k8 = predict_sharded_counter_mops(m, 32, 0.0, 8);
  const double k32 = predict_sharded_counter_mops(m, 32, 0.0, 32);
  EXPECT_GT(k8, 2.0 * k1);   // sharding relieves the bounce
  EXPECT_GT(k32, k8);        // per-thread shards eliminate it
  // One shard == the plain FAA prediction.
  EXPECT_NEAR(k1, m.predict(Primitive::kFaa, 32, 0.0).throughput_mops, 1e-9);
}

TEST(CounterAdvice, GapGrowsWithThreads) {
  const BouncingModel m = xeon_model();
  const Advice few = advise_counter(m, 4, 0.0);
  const Advice many = advise_counter(m, 32, 0.0);
  auto gap = [](const Advice& a) {
    double faa = 0.0;
    double loop = 0.0;
    for (const auto& o : a.options) {
      if (o.name == "FAA") faa = o.throughput_mops;
      if (o.name == "CAS-loop") loop = o.throughput_mops;
    }
    return faa / loop;
  };
  EXPECT_GT(gap(many), gap(few));
}

TEST(CounterAdvice, OptionsConvergeWhenUncontended) {
  // With huge work between increments every implementation is work-bound.
  const Advice a = advise_counter(xeon_model(), 8, 200'000.0);
  const double best = a.options.front().throughput_mops;
  const double worst = a.options.back().throughput_mops;
  EXPECT_GT(worst, best * 0.9);
}

TEST(LockAdvice, ScalableLocksWinAtHighThreadCounts) {
  const Advice a = advise_lock(xeon_model(), 36, 200.0, 400.0);
  // TAS must not win a 36-thread contest.
  EXPECT_NE(a.recommended, "TAS");
  ASSERT_EQ(a.options.size(), 4u);
}

TEST(LockAdvice, TasCompetitiveWhenAlone) {
  const Advice a = advise_lock(xeon_model(), 1, 100.0, 100.0);
  // Uncontended, every lock costs about the same; TAS must be within 2x of
  // the winner.
  double tas = 0.0;
  for (const auto& o : a.options) {
    if (o.name == "TAS") tas = o.throughput_mops;
  }
  EXPECT_GT(tas, a.options.front().throughput_mops * 0.5);
}

// --- boundary pins ----------------------------------------------------------
// The serving daemon exposes the advisor verbatim, so its edge behavior is
// part of the wire contract: a single thread, zero local work, and both
// machine presets must produce a sorted option list whose head is the
// recommendation.

BouncingModel knl_model() {
  return BouncingModel(ModelParams::from_machine(sim::knl_64()));
}

void expect_sorted_and_recommended(const Advice& a) {
  ASSERT_FALSE(a.options.empty());
  EXPECT_EQ(a.recommended, a.options.front().name);
  for (std::size_t i = 0; i + 1 < a.options.size(); ++i) {
    EXPECT_GE(a.options[i].throughput_mops, a.options[i + 1].throughput_mops)
        << a.options[i].name << " before " << a.options[i + 1].name;
  }
  for (const auto& o : a.options) {
    EXPECT_GT(o.throughput_mops, 0.0) << o.name;
    EXPECT_TRUE(std::isfinite(o.throughput_mops)) << o.name;
  }
}

TEST(AdvisorBoundaries, SingleThreadCounterAndLock) {
  // threads=1: no contention exists, but the ranking contract must hold and
  // nothing may divide by (N-1) into NaN.
  for (const BouncingModel& m : {xeon_model(), knl_model()}) {
    expect_sorted_and_recommended(advise_counter(m, 1, 0.0));
    expect_sorted_and_recommended(advise_counter(m, 1, 10'000.0));
    expect_sorted_and_recommended(advise_lock(m, 1, 100.0, 0.0));
  }
}

TEST(AdvisorBoundaries, ZeroLocalWorkAtFullContention) {
  // work=0 is the paper's high-contention limit — the regime where option
  // ordering matters most. Both presets, full core counts.
  expect_sorted_and_recommended(advise_counter(xeon_model(), 36, 0.0));
  expect_sorted_and_recommended(advise_counter(knl_model(), 64, 0.0));
  expect_sorted_and_recommended(advise_lock(xeon_model(), 36, 0.0, 0.0));
  expect_sorted_and_recommended(advise_lock(knl_model(), 64, 0.0, 0.0));
}

TEST(AdvisorBoundaries, KnlBouncePricierThanXeon) {
  // The KNL mesh's longer hand-offs make every contended option slower than
  // on the Xeon at the same thread count — the preset must actually matter.
  const Advice xeon = advise_counter(xeon_model(), 32, 0.0);
  const Advice knl = advise_counter(knl_model(), 32, 0.0);
  auto mops = [](const Advice& a, const std::string& name) {
    for (const auto& o : a.options) {
      if (o.name == name) return o.throughput_mops;
    }
    return 0.0;
  };
  EXPECT_LT(mops(knl, "FAA"), mops(xeon, "FAA"));
  EXPECT_LT(mops(knl, "CAS-loop"), mops(xeon, "CAS-loop"));
}

TEST(AdvisorBoundaries, BackoffZeroAtOneThreadOnBothPresets) {
  EXPECT_DOUBLE_EQ(recommended_backoff_cycles(xeon_model(), 1), 0.0);
  EXPECT_DOUBLE_EQ(recommended_backoff_cycles(knl_model(), 1), 0.0);
  EXPECT_GT(recommended_backoff_cycles(knl_model(), 2), 0.0);
}

TEST(Backoff, RecommendationIsCrossover) {
  const BouncingModel m = xeon_model();
  EXPECT_DOUBLE_EQ(recommended_backoff_cycles(m, 16),
                   3.0 * m.crossover_work(Primitive::kCasLoop, 16));
  EXPECT_DOUBLE_EQ(recommended_backoff_cycles(m, 1), 0.0);
  EXPECT_GT(recommended_backoff_cycles(m, 32),
            recommended_backoff_cycles(m, 8));
}

}  // namespace
}  // namespace am::model
