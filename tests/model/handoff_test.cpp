#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "model/handoff.hpp"
#include "sim/config.hpp"

namespace am::model {
namespace {

TEST(RoundRobin, UniformMachineMeanIsTheLatency) {
  const ModelParams p = ModelParams::from_machine(sim::test_machine(4, 100));
  const HandoffEstimate e = round_robin_handoff(p, 4);
  EXPECT_DOUBLE_EQ(e.mean_transfer_cycles, 100.0);
  EXPECT_DOUBLE_EQ(e.far_fraction, 0.0);
  ASSERT_EQ(e.grant_shares.size(), 4u);
  EXPECT_DOUBLE_EQ(e.grant_shares[0], 0.25);
}

TEST(RoundRobin, SingleCoreNeverTransfers) {
  const ModelParams p = ModelParams::from_machine(sim::test_machine(4, 100));
  const HandoffEstimate e = round_robin_handoff(p, 1);
  EXPECT_DOUBLE_EQ(e.mean_transfer_cycles, 0.0);
}

TEST(RoundRobin, TwoSocketMixture) {
  // Compact order on two sockets: the rotation crosses the socket boundary
  // exactly twice per cycle once both sockets participate.
  sim::MachineConfig cfg = sim::xeon_e5_2x18();
  cfg.arbitration = sim::Arbitration::kFifo;
  const ModelParams p = ModelParams::from_machine(cfg);

  const HandoffEstimate within = round_robin_handoff(p, 18);
  EXPECT_DOUBLE_EQ(within.mean_transfer_cycles, 70.0);
  EXPECT_DOUBLE_EQ(within.far_fraction, 0.0);

  const HandoffEstimate both = round_robin_handoff(p, 36);
  EXPECT_DOUBLE_EQ(both.far_fraction, 2.0 / 36.0);
  EXPECT_DOUBLE_EQ(both.mean_transfer_cycles,
                   (34.0 * 70.0 + 2.0 * 180.0) / 36.0);
}

TEST(TokenPassing, FifoMatchesClosedForm) {
  sim::MachineConfig cfg = sim::xeon_e5_2x18();
  cfg.arbitration = sim::Arbitration::kFifo;
  const ModelParams p = ModelParams::from_machine(cfg);
  const HandoffEstimate closed = round_robin_handoff(p, 24);
  const HandoffEstimate sim = simulate_handoff(p, 24, 25.0, 24 * 500);
  EXPECT_NEAR(sim.mean_transfer_cycles, closed.mean_transfer_cycles, 1.0);
  EXPECT_NEAR(jain_fairness(sim.grant_shares), 1.0, 0.001);
}

TEST(TokenPassing, ProximityBiasKeepsLineNearOwner) {
  const ModelParams p = ModelParams::from_machine(sim::xeon_e5_2x18());
  const HandoffEstimate e = simulate_handoff(p, 36, 25.0, 36 * 500);
  // Biased arbitration crosses sockets less often than round robin would
  // given random placement, and shares are visibly uneven.
  EXPECT_LT(jain_fairness(e.grant_shares), 0.999);
  EXPECT_GT(e.mean_transfer_cycles, 0.0);
}

TEST(TokenPassing, SharesSumToOne) {
  const ModelParams p = ModelParams::from_machine(sim::knl_64());
  const HandoffEstimate e = simulate_handoff(p, 32, 30.0, 32 * 400);
  double sum = 0.0;
  for (double s : e.grant_shares) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(TokenPassing, RejectsBadCoreCount) {
  const ModelParams p = ModelParams::from_machine(sim::test_machine(4));
  EXPECT_THROW(simulate_handoff(p, 0, 10.0), std::invalid_argument);
  EXPECT_THROW(simulate_handoff(p, 5, 10.0), std::invalid_argument);
}

TEST(Dispatch, EstimateUsesClosedFormForFifo) {
  sim::MachineConfig cfg = sim::test_machine(8, 50);
  const ModelParams p = ModelParams::from_machine(cfg);
  const HandoffEstimate e = estimate_handoff(p, 8, 20.0);
  EXPECT_DOUBLE_EQ(e.mean_transfer_cycles, 50.0);
}

}  // namespace
}  // namespace am::model
