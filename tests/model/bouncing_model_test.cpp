#include <gtest/gtest.h>

#include "model/bouncing_model.hpp"
#include "sim/config.hpp"

namespace am::model {
namespace {

BouncingModel test_model(sim::CoreId cores = 8) {
  return BouncingModel(ModelParams::from_machine(sim::test_machine(cores)));
}

TEST(Predict, SingleThreadIsLocalCost) {
  const BouncingModel m = test_model();
  const Prediction p = m.predict(Primitive::kFaa, 1, 0.0);
  const double c = m.params().local_op_cycles(Primitive::kFaa);
  EXPECT_DOUBLE_EQ(p.latency_cycles, c);
  EXPECT_DOUBLE_EQ(p.throughput_ops_per_kcycle, 1000.0 / c);
  EXPECT_EQ(p.regime, Regime::kLowContention);
}

TEST(Predict, SaturatedThroughputIsOneOverHold) {
  const BouncingModel m = test_model();
  const Prediction p = m.predict(Primitive::kFaa, 4, 0.0);
  // test machine: T=100, l1=4, exec=10 -> hold=114.
  EXPECT_DOUBLE_EQ(p.hold_cycles, 114.0);
  EXPECT_DOUBLE_EQ(p.throughput_ops_per_kcycle, 1000.0 / 114.0);
  EXPECT_EQ(p.regime, Regime::kHighContention);
  EXPECT_DOUBLE_EQ(p.latency_cycles, 4.0 * 114.0);
}

TEST(Predict, ThroughputPlateauAcrossN) {
  const BouncingModel m = test_model();
  const double x4 = m.predict(Primitive::kFaa, 4, 0.0).throughput_ops_per_kcycle;
  const double x8 = m.predict(Primitive::kFaa, 8, 0.0).throughput_ops_per_kcycle;
  EXPECT_DOUBLE_EQ(x4, x8);
}

TEST(Predict, LatencyLinearInN) {
  const BouncingModel m = test_model();
  const double l4 = m.predict(Primitive::kFaa, 4, 0.0).latency_cycles;
  const double l8 = m.predict(Primitive::kFaa, 8, 0.0).latency_cycles;
  EXPECT_DOUBLE_EQ(l8, 2.0 * l4);
}

TEST(Predict, CrossoverSeparatesRegimes) {
  const BouncingModel m = test_model();
  const double wstar = m.crossover_work(Primitive::kFaa, 4);
  EXPECT_DOUBLE_EQ(wstar, 3.0 * 114.0);
  EXPECT_EQ(m.predict(Primitive::kFaa, 4, wstar * 0.9).regime,
            Regime::kHighContention);
  EXPECT_EQ(m.predict(Primitive::kFaa, 4, wstar * 1.1).regime,
            Regime::kLowContention);
}

TEST(Predict, WorkBoundThroughputBeyondCrossover) {
  const BouncingModel m = test_model();
  const double w = 10'000.0;
  const Prediction p = m.predict(Primitive::kFaa, 4, w);
  EXPECT_NEAR(p.throughput_ops_per_kcycle, 4.0 * 1000.0 / (w + 114.0), 1e-9);
  EXPECT_DOUBLE_EQ(p.latency_cycles, 114.0);
}

TEST(Predict, LoadNeverBounces) {
  const BouncingModel m = test_model();
  const Prediction p = m.predict(Primitive::kLoad, 8, 0.0);
  EXPECT_EQ(p.regime, Regime::kLowContention);
  const double c = m.params().local_op_cycles(Primitive::kLoad);
  EXPECT_DOUBLE_EQ(p.latency_cycles, c);
  EXPECT_DOUBLE_EQ(p.throughput_ops_per_kcycle, 8.0 * 1000.0 / c);
}

TEST(Predict, CasSuccessDropsWithN) {
  const BouncingModel m = test_model();
  EXPECT_DOUBLE_EQ(m.predict(Primitive::kCas, 4, 0.0).success_rate, 0.25);
  EXPECT_DOUBLE_EQ(m.predict(Primitive::kCas, 8, 0.0).success_rate, 0.125);
}

TEST(Predict, CasLoopPaysNAcquisitions) {
  const BouncingModel m = test_model();
  const Prediction faa = m.predict(Primitive::kFaa, 8, 0.0);
  const Prediction loop = m.predict(Primitive::kCasLoop, 8, 0.0);
  EXPECT_DOUBLE_EQ(loop.attempts_per_op, 8.0);
  EXPECT_NEAR(faa.throughput_ops_per_kcycle /
                  loop.throughput_ops_per_kcycle,
              8.0, 1e-9);
  EXPECT_LT(loop.fairness_jain, 0.2);  // winner-takes-all under FIFO
}

TEST(Predict, FairnessFifoPerfectForFaa) {
  const BouncingModel m = test_model();
  EXPECT_DOUBLE_EQ(m.predict(Primitive::kFaa, 8, 0.0).fairness_jain, 1.0);
}

TEST(Predict, ProximityBiasLowersFairness) {
  const BouncingModel m(ModelParams::from_machine(sim::xeon_e5_2x18()));
  const Prediction p = m.predict(Primitive::kFaa, 36, 0.0);
  EXPECT_LT(p.fairness_jain, 0.999);
  EXPECT_GT(p.fairness_jain, 0.3);
}

TEST(Predict, EnergyPerOpGrowsWithN) {
  const BouncingModel m(ModelParams::from_machine(sim::xeon_e5_2x18()));
  const double e2 = m.predict(Primitive::kFaa, 2, 0.0).energy_per_op_nj;
  const double e32 = m.predict(Primitive::kFaa, 32, 0.0).energy_per_op_nj;
  EXPECT_GT(e32, 4.0 * e2);
}

TEST(PredictPrivate, ScalesLinearly) {
  const BouncingModel m = test_model();
  const Prediction p1 = m.predict_private(Primitive::kFaa, 1, 0.0);
  const Prediction p8 = m.predict_private(Primitive::kFaa, 8, 0.0);
  EXPECT_DOUBLE_EQ(p8.throughput_ops_per_kcycle,
                   8.0 * p1.throughput_ops_per_kcycle);
  EXPECT_DOUBLE_EQ(p8.latency_cycles, p1.latency_cycles);
}

TEST(SingleOpLatency, MatchesSupplyClasses) {
  const BouncingModel m = test_model();
  const double c = m.params().local_op_cycles(Primitive::kFaa);
  EXPECT_DOUBLE_EQ(m.single_op_latency(Primitive::kFaa, sim::Supply::kLocalHit, 0),
                   c);
  EXPECT_DOUBLE_EQ(m.single_op_latency(Primitive::kFaa, sim::Supply::kNear, 100),
                   100 + c);
  EXPECT_DOUBLE_EQ(
      m.single_op_latency(Primitive::kFaa, sim::Supply::kMemory, 0),
      m.params().memory_fill + c);
}

TEST(Regime, NamesForTables) {
  EXPECT_STREQ(to_string(Regime::kHighContention), "high-contention");
  EXPECT_STREQ(to_string(Regime::kLowContention), "low-contention");
}

}  // namespace
}  // namespace am::model
