// Property sweep over the model: structural guarantees of the closed forms
// for every (primitive, machine, thread count).
#include <gtest/gtest.h>

#include <tuple>

#include "bench_core/sim_backend.hpp"
#include "model/bouncing_model.hpp"
#include "sim/config.hpp"

namespace am::model {
namespace {

sim::MachineConfig machine_by_index(int i) {
  switch (i) {
    case 0: return sim::xeon_e5_2x18();
    case 1: return sim::knl_64();
    default: return sim::test_machine(16);
  }
}

using Case = std::tuple<Primitive, int /*machine*/, std::uint32_t /*threads*/>;

const char* machine_name_by_index(int i) {
  return i == 0 ? "xeon" : (i == 1 ? "knl" : "test");
}

class ModelInvariants : public ::testing::TestWithParam<Case> {};

TEST_P(ModelInvariants, PredictionsAreWellFormed) {
  const auto [prim, machine_idx, threads] = GetParam();
  const sim::MachineConfig cfg = machine_by_index(machine_idx);
  if (threads > cfg.core_count()) GTEST_SKIP();
  const BouncingModel m(ModelParams::from_machine(cfg));

  for (double w : {0.0, 500.0, 5000.0}) {
    const Prediction p = m.predict(prim, threads, w);
    SCOPED_TRACE(std::string(to_string(prim)) + " n=" +
                 std::to_string(threads) + " w=" + std::to_string(w));
    EXPECT_GT(p.throughput_ops_per_kcycle, 0.0);
    EXPECT_GT(p.throughput_mops, 0.0);
    EXPECT_GE(p.latency_cycles, m.params().local_op_cycles(prim) - 1e-9);
    EXPECT_GE(p.success_rate, 0.0);
    EXPECT_LE(p.success_rate, 1.0);
    EXPECT_GE(p.attempts_per_op, 1.0);
    EXPECT_GT(p.fairness_jain, 0.0);
    EXPECT_LE(p.fairness_jain, 1.0 + 1e-9);
    EXPECT_GT(p.energy_per_op_nj, 0.0);
    // Mops consistency with ops/kcycle and the clock.
    EXPECT_NEAR(p.throughput_mops,
                p.throughput_ops_per_kcycle * m.params().freq_ghz, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelInvariants,
    ::testing::Combine(::testing::Values(Primitive::kLoad, Primitive::kStore,
                                         Primitive::kSwap, Primitive::kTas,
                                         Primitive::kFaa, Primitive::kCas,
                                         Primitive::kCasLoop),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values<std::uint32_t>(1, 2, 9, 36)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             machine_name_by_index(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param));
    });

TEST(ModelMonotonicity, ThroughputNonIncreasingInWork) {
  const BouncingModel m(ModelParams::from_machine(sim::xeon_e5_2x18()));
  double prev = 1e300;
  for (double w = 0.0; w <= 20'000.0; w += 500.0) {
    const double x = m.predict(Primitive::kFaa, 16, w).throughput_ops_per_kcycle;
    EXPECT_LE(x, prev + 1e-9) << "w=" << w;
    prev = x;
  }
}

TEST(ModelMonotonicity, CasLoopBenefitsFromBackoff) {
  // The CAS loop's completed-op throughput *rises* past the crossover —
  // backoff trades acquisitions for completions (ablation A1.2). The model
  // must reproduce that non-monotonicity.
  const BouncingModel m(ModelParams::from_machine(sim::xeon_e5_2x18()));
  const double wstar = m.crossover_work(Primitive::kCasLoop, 16);
  const double saturated =
      m.predict(Primitive::kCasLoop, 16, wstar * 0.9).throughput_ops_per_kcycle;
  const double paced =
      m.predict(Primitive::kCasLoop, 16, wstar * 1.1).throughput_ops_per_kcycle;
  EXPECT_GT(paced, saturated);
}

TEST(ModelMonotonicity, LatencyNonDecreasingInThreads) {
  const BouncingModel m(ModelParams::from_machine(sim::xeon_e5_2x18()));
  double prev = 0.0;
  for (std::uint32_t n = 1; n <= 36; ++n) {
    const double l = m.predict(Primitive::kFaa, n, 0.0).latency_cycles;
    EXPECT_GE(l, prev - 1e-9) << "n=" << n;
    prev = l;
  }
}

TEST(ModelMonotonicity, CrossoverNonDecreasingInThreads) {
  const BouncingModel m(ModelParams::from_machine(sim::knl_64()));
  double prev = 0.0;
  for (std::uint32_t n = 1; n <= 64; n += 3) {
    const double w = m.crossover_work(Primitive::kFaa, n);
    EXPECT_GE(w, prev - 1e-9) << "n=" << n;
    prev = w;
  }
}

TEST(ModelContinuity, ThroughputContinuousAtCrossover) {
  const BouncingModel m(ModelParams::from_machine(sim::test_machine(8)));
  const double wstar = m.crossover_work(Primitive::kFaa, 8);
  const double below =
      m.predict(Primitive::kFaa, 8, wstar * 0.999).throughput_ops_per_kcycle;
  const double above =
      m.predict(Primitive::kFaa, 8, wstar * 1.001).throughput_ops_per_kcycle;
  EXPECT_NEAR(below, above, below * 0.01);
}

TEST(ModelMixed, EndpointsMatchPureWorkloads) {
  const BouncingModel m(ModelParams::from_machine(sim::xeon_e5_2x18()));
  // f == 1: every op is the write primitive on a shared line.
  const Prediction mixed = m.predict_mixed(Primitive::kFaa, 1.0, 8, 0.0);
  const Prediction pure = m.predict(Primitive::kFaa, 8, 0.0);
  EXPECT_NEAR(mixed.throughput_ops_per_kcycle, pure.throughput_ops_per_kcycle,
              pure.throughput_ops_per_kcycle * 0.02);
  // f == 0: loads scale.
  const Prediction reads = m.predict_mixed(Primitive::kFaa, 0.0, 8, 0.0);
  const Prediction loads = m.predict(Primitive::kLoad, 8, 0.0);
  EXPECT_NEAR(reads.throughput_ops_per_kcycle, loads.throughput_ops_per_kcycle,
              loads.throughput_ops_per_kcycle * 0.01);
}

TEST(ModelMixed, MonotoneInWriteFraction) {
  const BouncingModel m(ModelParams::from_machine(sim::xeon_e5_2x18()));
  double prev = 1e300;
  for (double f : {0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    const double x =
        m.predict_mixed(Primitive::kFaa, f, 16, 0.0).throughput_ops_per_kcycle;
    EXPECT_LE(x, prev + 1e-9) << "f=" << f;
    prev = x;
  }
}

TEST(ModelZipf, TracksSimulatorAcrossSkew) {
  sim::MachineConfig cfg = sim::xeon_e5_2x18();
  bench::SimBackend backend(cfg);
  const BouncingModel m(ModelParams::from_machine(cfg));
  for (double s : {0.0, 0.6, 0.99, 1.5}) {
    for (std::size_t lines : {std::size_t{8}, std::size_t{64}}) {
      bench::WorkloadConfig w;
      w.mode = bench::WorkloadMode::kZipf;
      w.prim = Primitive::kFaa;
      w.threads = 16;
      w.zipf_lines = lines;
      w.zipf_s = s;
      const auto run = backend.run(w);
      const Prediction p = m.predict_zipf(Primitive::kFaa, 16, 0.0, lines, s);
      const double err = std::fabs(p.throughput_ops_per_kcycle -
                                   run.throughput_ops_per_kcycle()) /
                         run.throughput_ops_per_kcycle();
      EXPECT_LT(err, 0.2) << "s=" << s << " lines=" << lines << " measured="
                          << run.throughput_ops_per_kcycle()
                          << " model=" << p.throughput_ops_per_kcycle;
    }
  }
}

TEST(ModelZipf, LimitsAreExact) {
  const BouncingModel m(ModelParams::from_machine(sim::test_machine(16)));
  // One line == the plain high-contention prediction.
  const Prediction one = m.predict_zipf(Primitive::kFaa, 16, 0.0, 1, 0.0);
  const Prediction plain = m.predict(Primitive::kFaa, 16, 0.0);
  EXPECT_NEAR(one.throughput_ops_per_kcycle, plain.throughput_ops_per_kcycle,
              plain.throughput_ops_per_kcycle * 0.01);
  // Skew monotonically hurts throughput.
  double prev = 1e300;
  for (double s : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    const double x =
        m.predict_zipf(Primitive::kFaa, 16, 0.0, 64, s).throughput_ops_per_kcycle;
    EXPECT_LE(x, prev + 1e-9) << "s=" << s;
    prev = x;
  }
}

TEST(ModelPrivate, AlwaysBeatsSharedForExclusivePrims) {
  const BouncingModel m(ModelParams::from_machine(sim::knl_64()));
  for (std::uint32_t n : {2u, 8u, 32u, 64u}) {
    const double priv =
        m.predict_private(Primitive::kFaa, n, 0.0).throughput_ops_per_kcycle;
    const double shared =
        m.predict(Primitive::kFaa, n, 0.0).throughput_ops_per_kcycle;
    EXPECT_GT(priv, shared) << "n=" << n;
  }
}

}  // namespace
}  // namespace am::model
