#include <gtest/gtest.h>

#include <cmath>

#include "model/cas_model.hpp"

namespace am::model {
namespace {

TEST(CasDeterministic, OneOverN) {
  EXPECT_DOUBLE_EQ(cas_success_deterministic(1), 1.0);
  EXPECT_DOUBLE_EQ(cas_success_deterministic(2), 0.5);
  EXPECT_DOUBLE_EQ(cas_success_deterministic(10), 0.1);
}

TEST(CasPoisson, FixedPointProperty) {
  for (std::uint32_t n : {2u, 4u, 8u, 16u, 64u}) {
    const double s = cas_success_poisson(n);
    // s must satisfy s = exp(-s (n-1)).
    EXPECT_NEAR(s, std::exp(-s * (n - 1)), 1e-6) << "n=" << n;
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
  EXPECT_DOUBLE_EQ(cas_success_poisson(1), 1.0);
}

TEST(CasPoisson, BeatsDeterministicButSameShape) {
  for (std::uint32_t n : {4u, 16u, 64u}) {
    const double det = cas_success_deterministic(n);
    const double poi = cas_success_poisson(n);
    EXPECT_GT(poi, det) << "n=" << n;       // jitter helps a bit
    EXPECT_LT(poi, 4.0 * det) << "n=" << n; // but it is still ~ln(n)/n
  }
}

TEST(CasPoisson, MonotonicallyDecreasing) {
  double prev = 1.0;
  for (std::uint32_t n = 2; n <= 128; n *= 2) {
    const double s = cas_success_poisson(n);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(CasLoop, AttemptsPerOp) {
  EXPECT_DOUBLE_EQ(casloop_attempts_per_op(1), 1.0);
  EXPECT_DOUBLE_EQ(casloop_attempts_per_op(8), 8.0);
}

}  // namespace
}  // namespace am::model
