// The reproduction's central property test: the closed-form model must
// track the discrete-event machine across primitives, thread counts and
// work levels (this is Table 3 in miniature, enforced in CI).
#include <gtest/gtest.h>

#include "bench_core/sim_backend.hpp"
#include "model/bouncing_model.hpp"
#include "model/validate.hpp"
#include "sim/config.hpp"

namespace am::model {
namespace {

struct GridCase {
  Primitive prim;
  std::uint32_t threads;
  double work;
};

class ModelTracksSim : public ::testing::TestWithParam<GridCase> {};

TEST_P(ModelTracksSim, ThroughputWithin15Percent) {
  const GridCase c = GetParam();
  sim::MachineConfig cfg = sim::test_machine(16);
  bench::SimBackend backend(cfg);
  const BouncingModel model(ModelParams::from_machine(cfg));

  bench::WorkloadConfig w;
  w.mode = bench::WorkloadMode::kHighContention;
  w.prim = c.prim;
  w.threads = c.threads;
  w.work = static_cast<bench::Cycles>(c.work);
  const auto run = backend.run(w);
  const Prediction pred = model.predict(c.prim, c.threads, c.work);

  ASSERT_GT(run.throughput_ops_per_kcycle(), 0.0);
  const double err = std::fabs(pred.throughput_ops_per_kcycle -
                               run.throughput_ops_per_kcycle()) /
                     run.throughput_ops_per_kcycle();
  EXPECT_LT(err, 0.15) << "measured=" << run.throughput_ops_per_kcycle()
                       << " predicted=" << pred.throughput_ops_per_kcycle;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelTracksSim,
    ::testing::Values(
        GridCase{Primitive::kFaa, 1, 0}, GridCase{Primitive::kFaa, 2, 0},
        GridCase{Primitive::kFaa, 4, 0}, GridCase{Primitive::kFaa, 8, 0},
        GridCase{Primitive::kFaa, 16, 0}, GridCase{Primitive::kFaa, 4, 200},
        GridCase{Primitive::kFaa, 4, 2000}, GridCase{Primitive::kFaa, 8, 8000},
        GridCase{Primitive::kSwap, 8, 0}, GridCase{Primitive::kTas, 8, 0},
        GridCase{Primitive::kStore, 8, 0}, GridCase{Primitive::kCas, 8, 0},
        GridCase{Primitive::kCasLoop, 4, 0},
        GridCase{Primitive::kCasLoop, 8, 0},
        GridCase{Primitive::kLoad, 8, 0}, GridCase{Primitive::kLoad, 16, 100}),
    [](const auto& info) {
      const GridCase& c = info.param;
      return std::string(to_string(c.prim)) + "_n" +
             std::to_string(c.threads) + "_w" +
             std::to_string(static_cast<int>(c.work));
    });

TEST(ModelVsSim, LatencyTracksWithinTwentyPercent) {
  sim::MachineConfig cfg = sim::test_machine(16);
  bench::SimBackend backend(cfg);
  const BouncingModel model(ModelParams::from_machine(cfg));
  for (std::uint32_t n : {2u, 4u, 8u, 16u}) {
    bench::WorkloadConfig w;
    w.mode = bench::WorkloadMode::kHighContention;
    w.prim = Primitive::kFaa;
    w.threads = n;
    const auto run = backend.run(w);
    const Prediction pred = model.predict(Primitive::kFaa, n, 0.0);
    const double err =
        std::fabs(pred.latency_cycles - run.mean_latency_cycles()) /
        run.mean_latency_cycles();
    EXPECT_LT(err, 0.2) << "n=" << n << " measured=" << run.mean_latency_cycles()
                        << " predicted=" << pred.latency_cycles;
  }
}

TEST(ModelVsSim, CasSuccessRateMatches) {
  sim::MachineConfig cfg = sim::test_machine(16);
  bench::SimBackend backend(cfg);
  const BouncingModel model(ModelParams::from_machine(cfg));
  for (std::uint32_t n : {2u, 4u, 8u}) {
    bench::WorkloadConfig w;
    w.mode = bench::WorkloadMode::kHighContention;
    w.prim = Primitive::kCas;
    w.threads = n;
    const auto run = backend.run(w);
    const Prediction pred = model.predict(Primitive::kCas, n, 0.0);
    EXPECT_NEAR(run.success_rate(), pred.success_rate, 0.03) << "n=" << n;
  }
}

TEST(ModelVsSim, ValidationReportAggregatesSanely) {
  sim::MachineConfig cfg = sim::test_machine(8);
  bench::SimBackend backend(cfg);
  const BouncingModel model(ModelParams::from_machine(cfg));
  ValidationOptions opts;
  opts.primitives = {Primitive::kFaa, Primitive::kCasLoop};
  opts.thread_counts = {2, 4, 8};
  opts.work_values = {0.0, 500.0};
  const ValidationReport report = validate(backend, model, opts);
  EXPECT_EQ(report.points.size(), 2u * 3u * 2u);
  EXPECT_LT(report.mape_throughput, 0.15);
  EXPECT_GT(report.max_rel_err_throughput, 0.0);
}

TEST(ModelVsSim, XeonPresetThroughputWithinTolerance) {
  // On the proximity-biased preset the hand-off mixture comes from the
  // token-passing evaluation; agreement is looser but must hold.
  sim::MachineConfig cfg = sim::xeon_e5_2x18();
  bench::SimBackend backend(cfg);
  const BouncingModel model(ModelParams::from_machine(cfg));
  for (std::uint32_t n : {8u, 18u, 36u}) {
    bench::WorkloadConfig w;
    w.mode = bench::WorkloadMode::kHighContention;
    w.prim = Primitive::kFaa;
    w.threads = n;
    const auto run = backend.run(w);
    const Prediction pred = model.predict(Primitive::kFaa, n, 0.0);
    const double err = std::fabs(pred.throughput_ops_per_kcycle -
                                 run.throughput_ops_per_kcycle()) /
                       run.throughput_ops_per_kcycle();
    EXPECT_LT(err, 0.25) << "n=" << n;
  }
}

}  // namespace
}  // namespace am::model
