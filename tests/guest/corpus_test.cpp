// The checked-in corpus is golden: re-assembling each program in-process
// must reproduce tests/guest/corpus/<name>.hex byte for byte (AM_REGEN_CORPUS=1
// re-blesses the files). Each program is also run to completion — the corpus
// self-validates (barrier + exit_group(0)), so a clean exit is a functional
// test of lost updates, LR/SC pairing and retirement-order value semantics.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "guest/corpus.hpp"
#include "guest/runner.hpp"

namespace am::guest {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(AM_GUEST_CORPUS_DIR) + "/" + name + ".hex";
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

TEST(GuestCorpus, CheckedInHexMatchesAssembler) {
  const bool regen = std::getenv("AM_REGEN_CORPUS") != nullptr;
  for (const std::string& name : corpus::names()) {
    const std::vector<std::uint8_t> elf = corpus::build(name);
    ASSERT_FALSE(elf.empty()) << name;
    const std::string hex = corpus::to_hex(elf.data(), elf.size());
    if (regen) {
      std::ofstream out(golden_path(name), std::ios::binary);
      out << hex;
      ASSERT_TRUE(out.good()) << "cannot re-bless " << golden_path(name);
      continue;
    }
    std::string golden;
    ASSERT_TRUE(read_file(golden_path(name), &golden))
        << golden_path(name)
        << " missing — run with AM_REGEN_CORPUS=1 to bless";
    EXPECT_EQ(golden, hex) << name
                           << ": assembler output drifted from the checked-in "
                              "corpus (AM_REGEN_CORPUS=1 re-blesses)";
  }
}

TEST(GuestCorpus, CheckedInHexDecodesToBuilderBytes) {
  for (const std::string& name : corpus::names()) {
    std::string golden;
    if (!read_file(golden_path(name), &golden)) {
      GTEST_SKIP() << "corpus not blessed yet";
    }
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(corpus::from_hex(golden, &bytes)) << name;
    EXPECT_EQ(bytes, corpus::build(name)) << name;
  }
}

TEST(GuestCorpus, EveryProgramSelfValidatesUnderContention) {
  for (const std::string& name : corpus::names()) {
    const std::vector<std::uint8_t> elf = corpus::build(name);
    GuestRunConfig config;
    config.backend = "sim:test";
    config.harts = 2;
    const GuestRunResult r = run_guest(elf.data(), elf.size(), config);
    ASSERT_TRUE(r.error.ok())
        << name << ": " << r.error.code << ": " << r.error.message;
    for (const HartReport& h : r.hart_reports) {
      EXPECT_TRUE(h.exited) << name;
      EXPECT_EQ(h.exit_code, 0u) << name;
    }
    EXPECT_GT(r.total_atomics, 0u) << name;
    EXPECT_GT(r.completion_cycles, 0u) << name;
  }
}

TEST(GuestCorpus, SpinlockRunsUnderTsoOnXeon) {
  const std::vector<std::uint8_t> elf = corpus::build("spinlock");
  GuestRunConfig config;
  config.backend = "sim:xeon:tso";
  config.harts = 4;
  const GuestRunResult r = run_guest(elf.data(), elf.size(), config);
  ASSERT_TRUE(r.error.ok()) << r.error.code << ": " << r.error.message;
  EXPECT_EQ(r.memory_model, sim::MemoryModel::kTso);
  for (const HartReport& h : r.hart_reports) EXPECT_EQ(h.exit_code, 0u);
}

TEST(GuestCorpus, RunsAreDeterministicAcrossRepeats) {
  const std::vector<std::uint8_t> elf = corpus::build("ticket_lock");
  GuestRunConfig config;
  config.backend = "sim:test";
  config.harts = 2;
  const GuestRunResult a = run_guest(elf.data(), elf.size(), config);
  const GuestRunResult b = run_guest(elf.data(), elf.size(), config);
  ASSERT_TRUE(a.error.ok());
  EXPECT_EQ(a.completion_cycles, b.completion_cycles);
  EXPECT_EQ(a.total_instructions, b.total_instructions);
  EXPECT_EQ(a.total_atomics, b.total_atomics);
  EXPECT_EQ(a.total_sc_failures, b.total_sc_failures);
}

}  // namespace
}  // namespace am::guest
