// ELF32 loader contract: the corpus binaries load into a sane image, and
// every malformed shape the loader documents is refused with its structured
// code — truncation, wrong magic/class/machine/type, overlapping or
// oversized segments, an entry outside text. Nothing here may crash: a
// GuestError is the only failure channel.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "guest/corpus.hpp"
#include "guest/elf.hpp"

namespace am::guest {
namespace {

std::vector<std::uint8_t> corpus_elf(const std::string& name) {
  std::vector<std::uint8_t> elf = corpus::build(name);
  EXPECT_FALSE(elf.empty()) << name;
  return elf;
}

GuestError load(const std::vector<std::uint8_t>& elf, GuestImage* out,
                GuestLimits limits = {}) {
  return load_elf32(elf.data(), elf.size(), limits, 64u << 10, out);
}

TEST(GuestElf, CorpusBinariesLoadWithSaneLayout) {
  for (const std::string& name : corpus::names()) {
    GuestImage image;
    const GuestError err = load(corpus_elf(name), &image);
    ASSERT_TRUE(err.ok()) << name << ": " << err.code << ": " << err.message;
    // Entry lies inside the executable range and the stream is 4-aligned.
    EXPECT_GE(image.entry, image.text_base) << name;
    EXPECT_LT(image.entry, image.text_end) << name;
    EXPECT_EQ(image.entry % 4, 0u) << name;
    // Heap sits above the segments, stacks above the heap, all in-bounds.
    EXPECT_GE(image.brk, image.text_end) << name;
    EXPECT_GE(image.heap_end, image.brk) << name;
    EXPECT_GE(image.stacks_base, image.heap_end) << name;
    EXPECT_TRUE(image.mem.contains(image.stacks_base, 4)) << name;
  }
}

TEST(GuestElf, TextRangeIsWriteProtected) {
  GuestImage image;
  ASSERT_TRUE(load(corpus_elf("faa_counter"), &image).ok());
  image.mem.store32(image.text_base, 0xdeadbeef);
  EXPECT_FALSE(image.mem.ok());
  EXPECT_TRUE(image.mem.text_fault());
  EXPECT_EQ(image.mem.fault_addr(), image.text_base);
}

TEST(GuestElf, TruncatedHeaderIsElfTruncated) {
  const std::vector<std::uint8_t> elf = corpus_elf("spinlock");
  for (std::size_t len : {std::size_t{0}, std::size_t{3}, std::size_t{51}}) {
    GuestImage image;
    const std::vector<std::uint8_t> cut(elf.begin(), elf.begin() + len);
    EXPECT_EQ(load(cut, &image).code, errc::kElfTruncated) << len;
  }
}

TEST(GuestElf, TruncatedSegmentIsElfTruncated) {
  const std::vector<std::uint8_t> elf = corpus_elf("spinlock");
  GuestImage image;
  const std::vector<std::uint8_t> cut(elf.begin(), elf.begin() + 120);
  const GuestError err = load(cut, &image);
  EXPECT_FALSE(err.ok());
  // Either the program headers or a segment body got cut; both are
  // truncation-class failures.
  EXPECT_EQ(err.code, errc::kElfTruncated);
}

TEST(GuestElf, BadMagicIsRefused) {
  std::vector<std::uint8_t> elf = corpus_elf("spinlock");
  elf[0] = 0x7e;
  GuestImage image;
  EXPECT_EQ(load(elf, &image).code, errc::kElfBadMagic);
}

TEST(GuestElf, Elf64IsWrongClass) {
  std::vector<std::uint8_t> elf = corpus_elf("spinlock");
  elf[4] = 2;  // EI_CLASS = ELFCLASS64
  GuestImage image;
  EXPECT_EQ(load(elf, &image).code, errc::kElfWrongClass);
}

TEST(GuestElf, X86MachineIsWrongMachine) {
  std::vector<std::uint8_t> elf = corpus_elf("spinlock");
  elf[18] = 0x3e;  // e_machine = EM_X86_64
  elf[19] = 0x00;
  GuestImage image;
  EXPECT_EQ(load(elf, &image).code, errc::kElfWrongMachine);
}

TEST(GuestElf, SharedObjectIsNotExec) {
  std::vector<std::uint8_t> elf = corpus_elf("spinlock");
  elf[16] = 3;  // e_type = ET_DYN
  GuestImage image;
  EXPECT_EQ(load(elf, &image).code, errc::kElfNotExec);
}

TEST(GuestElf, OverlappingSegmentsAreRefused) {
  // Rebuild the spinlock image with the data segment placed on top of text.
  corpus::Elf32Builder b;
  const std::vector<std::uint8_t> base = corpus_elf("spinlock");
  GuestImage image;
  ASSERT_TRUE(load(base, &image).ok());
  corpus::Elf32Builder::Segment text;
  text.vaddr = 0x10000;
  text.flags = 5;  // R+X
  text.bytes.assign(256, 0x13);  // nops
  text.memsz = 256;
  corpus::Elf32Builder::Segment overlap = text;
  overlap.vaddr = 0x10080;  // inside text
  overlap.flags = 6;        // R+W
  b.entry = 0x10000;
  b.segments = {text, overlap};
  const std::vector<std::uint8_t> elf = b.build();
  GuestImage out;
  EXPECT_EQ(load(elf, &out).code, errc::kElfOverlap);
}

TEST(GuestElf, ImageCapIsElfTooLarge) {
  corpus::Elf32Builder b;
  corpus::Elf32Builder::Segment text;
  text.vaddr = 0x10000;
  text.flags = 5;
  text.bytes.assign(16, 0x13);
  text.memsz = 64u << 20;  // 64 MiB of zero-fill: over the 16 MiB cap
  b.entry = 0x10000;
  b.segments = {text};
  GuestImage out;
  EXPECT_EQ(load(b.build(), &out).code, errc::kElfTooLarge);
}

TEST(GuestElf, EntryOutsideTextIsBadEntry) {
  corpus::Elf32Builder b;
  corpus::Elf32Builder::Segment text;
  text.vaddr = 0x10000;
  text.flags = 5;
  text.bytes.assign(64, 0x13);
  text.memsz = 64;
  b.entry = 0x40000;  // nowhere
  b.segments = {text};
  GuestImage out;
  EXPECT_EQ(load(b.build(), &out).code, errc::kElfBadEntry);
}

TEST(GuestElf, HexRoundTripsEveryCorpusBinary) {
  for (const std::string& name : corpus::names()) {
    const std::vector<std::uint8_t> elf = corpus_elf(name);
    const std::string hex = corpus::to_hex(elf.data(), elf.size());
    std::vector<std::uint8_t> back;
    ASSERT_TRUE(corpus::from_hex(hex, &back)) << name;
    EXPECT_EQ(back, elf) << name;
  }
}

TEST(GuestElf, FromHexRejectsGarbage) {
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(corpus::from_hex("zz", &out));
  EXPECT_FALSE(corpus::from_hex("abc", &out));  // odd nibble count
  EXPECT_TRUE(corpus::from_hex(" 7f 45\n4c46 ", &out));
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0x7f, 0x45, 0x4c, 0x46}));
}

}  // namespace
}  // namespace am::guest
