// Interpreter semantics on hand-assembled programs: integer ALU results,
// atomic value semantics applied at retirement, LR/SC reservation rules,
// the syscall surface, and the structured-error channel for every runtime
// fault class (illegal instruction, wild pointer, misaligned atomic,
// runaway loop). All runs ride the real sim::Machine (sim:test preset), so
// these also pin the guest->sim lowering end to end.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "guest/asm.hpp"
#include "guest/corpus.hpp"
#include "guest/runner.hpp"

namespace am::guest {
namespace {

using namespace am::guest::rv;

/// Assembles @p words at 0x10000 (entry) with a small RW data segment at
/// 0x20000 and runs it on the test machine.
GuestRunResult run_words(const std::vector<std::uint32_t>& words,
                         std::vector<std::uint8_t> data = {},
                         GuestRunConfig config = {}) {
  corpus::Elf32Builder b;
  corpus::Elf32Builder::Segment text;
  text.vaddr = 0x10000;
  text.flags = 5;  // R+X
  for (std::uint32_t w : words) {
    text.bytes.push_back(static_cast<std::uint8_t>(w));
    text.bytes.push_back(static_cast<std::uint8_t>(w >> 8));
    text.bytes.push_back(static_cast<std::uint8_t>(w >> 16));
    text.bytes.push_back(static_cast<std::uint8_t>(w >> 24));
  }
  text.memsz = static_cast<std::uint32_t>(text.bytes.size());
  corpus::Elf32Builder::Segment d;
  d.vaddr = 0x20000;
  d.flags = 6;  // R+W
  d.bytes = std::move(data);
  d.memsz = std::max<std::uint32_t>(
      64, static_cast<std::uint32_t>(d.bytes.size()));
  b.entry = 0x10000;
  b.segments = {text, d};
  const std::vector<std::uint8_t> elf = b.build();
  if (config.backend.empty() || config.backend == "sim:xeon") {
    config.backend = "sim:test";
  }
  return run_guest(elf.data(), elf.size(), config);
}

std::vector<std::uint32_t> exit_with_a0() {
  return {addi(a7, x0, 93), ecall()};
}

void append(std::vector<std::uint32_t>* prog,
            const std::vector<std::uint32_t>& tail) {
  prog->insert(prog->end(), tail.begin(), tail.end());
}

TEST(GuestInterp, ArithmeticFlowsIntoExitCode) {
  std::vector<std::uint32_t> prog = {
      addi(a0, x0, 5),
      addi(t0, x0, 7),
      mul(a0, a0, t0),   // 35
      addi(a0, a0, 7),   // 42
  };
  append(&prog, exit_with_a0());
  const GuestRunResult r = run_words(prog);
  ASSERT_TRUE(r.error.ok()) << r.error.code << ": " << r.error.message;
  ASSERT_EQ(r.hart_reports.size(), 1u);
  EXPECT_TRUE(r.hart_reports[0].exited);
  EXPECT_EQ(r.hart_reports[0].exit_code, 42u);
  EXPECT_GT(r.completion_cycles, 0u);
}

TEST(GuestInterp, AmoAddReturnsOldValueAndUpdatesMemory) {
  std::vector<std::uint32_t> prog = {
      lui(t0, 0x20000),
      addi(t1, x0, 5),
      sw(t1, 0, t0),            // [0x20000] = 5
      addi(t2, x0, 3),
      amoadd_w(s0, t2, t0),     // s0 = 5, [0x20000] = 8
      lw(s1, 0, t0),            // s1 = 8
      add(a0, s0, s1),          // 13
  };
  append(&prog, exit_with_a0());
  const GuestRunResult r = run_words(prog);
  ASSERT_TRUE(r.error.ok()) << r.error.code << ": " << r.error.message;
  EXPECT_EQ(r.hart_reports[0].exit_code, 13u);
  EXPECT_GE(r.hart_reports[0].atomics, 1u);
}

TEST(GuestInterp, LrScSucceedsOnceThenFailsWithoutReservation) {
  std::vector<std::uint32_t> prog = {
      lui(t0, 0x20000),
      lr_w(s0, t0),             // reservation on the line, s0 = 0
      addi(s1, s0, 9),
      sc_w(s2, s1, t0),         // success: s2 = 0, [0x20000] = 9
      sc_w(t3, s1, t0),         // no reservation anymore: t3 = 1, no store
      lw(s3, 0, t0),            // 9
      slli(t3, t3, 4),          // 16
      add(a0, t3, s3),          // 25
  };
  append(&prog, exit_with_a0());
  const GuestRunResult r = run_words(prog);
  ASSERT_TRUE(r.error.ok()) << r.error.code << ": " << r.error.message;
  EXPECT_EQ(r.hart_reports[0].exit_code, 25u);
  EXPECT_EQ(r.hart_reports[0].sc_failures, 1u);
}

TEST(GuestInterp, AmoCasSwapsOnlyOnMatch) {
  std::vector<std::uint32_t> prog = {
      lui(t0, 0x20000),
      addi(t1, x0, 7),
      sw(t1, 0, t0),            // [0x20000] = 7
      addi(s0, x0, 7),          // expected (rd carries it in)
      addi(t2, x0, 21),         // desired
      amocas_w(s0, t2, t0),     // matches: s0 = 7, [0x20000] = 21
      addi(s1, x0, 99),         // wrong expected
      addi(t2, x0, 50),
      amocas_w(s1, t2, t0),     // no match: s1 = 21, memory keeps 21
      lw(s2, 0, t0),
      add(a0, s1, s2),          // 21 + 21 = 42
  };
  append(&prog, exit_with_a0());
  const GuestRunResult r = run_words(prog);
  ASSERT_TRUE(r.error.ok()) << r.error.code << ": " << r.error.message;
  EXPECT_EQ(r.hart_reports[0].exit_code, 42u);
}

TEST(GuestInterp, WriteSyscallCapturesStdout) {
  std::vector<std::uint32_t> prog = {
      addi(a0, x0, 1),          // fd = stdout
      lui(a1, 0x20000),         // buf
      addi(a2, x0, 3),          // len
      addi(a7, x0, 64),         // write
      ecall(),
      addi(a0, x0, 0),
  };
  append(&prog, exit_with_a0());
  const GuestRunResult r = run_words(prog, {'h', 'i', '\n'});
  ASSERT_TRUE(r.error.ok()) << r.error.code << ": " << r.error.message;
  EXPECT_EQ(r.stdout_bytes, "hi\n");
}

TEST(GuestInterp, UnknownSyscallReturnsEnosys) {
  std::vector<std::uint32_t> prog = {
      addi(a7, x0, 999),
      ecall(),                   // a0 = -ENOSYS = -38
      addi(t0, x0, -38),
      sub(a0, a0, t0),           // 0 iff the kernel said ENOSYS
  };
  append(&prog, exit_with_a0());
  const GuestRunResult r = run_words(prog);
  ASSERT_TRUE(r.error.ok()) << r.error.code << ": " << r.error.message;
  EXPECT_EQ(r.hart_reports[0].exit_code, 0u);
}

TEST(GuestInterp, ClockGettime64WritesKernelTimespec) {
  // rv32 Linux is time64-only: nr 403 writes the 16-byte __kernel_timespec
  // {i64 tv_sec; i64 tv_nsec}. The virtual clock runs at 1 retired
  // instruction == 1 ns, so after the 5 instructions up to and including
  // the ecall: sec == 0, nsec == 5.
  std::vector<std::uint32_t> prog = {
      lui(a1, 0x20000),          // ts pointer
      addi(a0, x0, 1),           // clockid (CLOCK_MONOTONIC; ignored)
      addi(a7, x0, 403),
      addi(t6, x0, 0),           // filler so the instret count is explicit
      ecall(),                   // a0 = 0
      lw(t0, 0, a1),             // sec lo  = 0
      lw(t1, 4, a1),             // sec hi  = 0
      lw(t2, 8, a1),             // nsec lo = 5
      lw(t3, 12, a1),            // nsec hi = 0
      add(a0, a0, t0),
      add(a0, a0, t1),
      add(a0, a0, t2),
      add(a0, a0, t3),           // exit code = 5
  };
  append(&prog, exit_with_a0());
  const GuestRunResult r = run_words(prog);
  ASSERT_TRUE(r.error.ok()) << r.error.code << ": " << r.error.message;
  EXPECT_EQ(r.hart_reports[0].exit_code, 5u);
}

TEST(GuestInterp, ClockGettime32IsEnosysLikeRealRv32) {
  // Old 32-bit clock_gettime (nr 113) does not exist on rv32 kernels.
  std::vector<std::uint32_t> prog = {
      addi(a7, x0, 113),
      ecall(),
      addi(t0, x0, -38),
      sub(a0, a0, t0),           // 0 iff -ENOSYS
  };
  append(&prog, exit_with_a0());
  const GuestRunResult r = run_words(prog);
  ASSERT_TRUE(r.error.ok()) << r.error.code << ": " << r.error.message;
  EXPECT_EQ(r.hart_reports[0].exit_code, 0u);
}

TEST(GuestInterp, IllegalInstructionIsStructured) {
  const GuestRunResult r = run_words({0xffffffffu});
  EXPECT_EQ(r.error.code, errc::kIllegalInstruction);
}

TEST(GuestInterp, EbreakIsStructured) {
  const GuestRunResult r = run_words({ebreak()});
  EXPECT_EQ(r.error.code, errc::kBreakpoint);
}

TEST(GuestInterp, WildLoadIsMemFault) {
  std::vector<std::uint32_t> prog = {
      lui(t0, 0xdeadb000u),
      lw(a0, 0, t0),
  };
  append(&prog, exit_with_a0());
  const GuestRunResult r = run_words(prog);
  EXPECT_EQ(r.error.code, errc::kMemFault);
}

TEST(GuestInterp, JalrToTopOfAddressSpaceIsMemFault) {
  // pc = 0xfffffffc makes the fetch bounds check's `pc + 4` wrap to 0 in
  // uint32 arithmetic; done naively that passes and indexes the decoded
  // stream ~1G entries out of bounds. The jalr target is entirely
  // guest-controlled, so this must be a structured fault, never host UB.
  std::vector<std::uint32_t> prog = {
      jalr(x0, x0, -4),          // target (0 - 4) & ~1 = 0xfffffffc
  };
  const GuestRunResult r = run_words(prog);
  EXPECT_EQ(r.error.code, errc::kMemFault);
}

TEST(GuestInterp, StoreIntoTextIsTextWrite) {
  std::vector<std::uint32_t> prog = {
      lui(t0, 0x10000),
      sw(x0, 0, t0),
  };
  append(&prog, exit_with_a0());
  const GuestRunResult r = run_words(prog);
  EXPECT_EQ(r.error.code, errc::kTextWrite);
}

TEST(GuestInterp, MisalignedAtomicIsStructured) {
  std::vector<std::uint32_t> prog = {
      lui(t0, 0x20000),
      addi(t0, t0, 2),
      amoadd_w(s0, x0, t0),
  };
  append(&prog, exit_with_a0());
  const GuestRunResult r = run_words(prog);
  EXPECT_EQ(r.error.code, errc::kMisaligned);
}

TEST(GuestInterp, RunawayLoopHitsInstructionBudget) {
  GuestRunConfig config;
  config.guest.max_instructions = 10'000;
  const GuestRunResult r = run_words({jal(x0, 0)}, {}, config);
  EXPECT_EQ(r.error.code, errc::kInstructionBudget);
}

TEST(GuestInterp, SliceYieldsKeepPlainSpinLoopsLive) {
  // Hart 1 spins on a *plain* load of a flag hart 0 stores with a plain sw.
  // Without the slice-yield fairness mechanism this never terminates (the
  // spinner would monopolize interpretation); with it, both exit 0.
  std::vector<std::uint32_t> prog = {
      lui(t0, 0x20000),
      bne(a0, x0, 5 * 4),        // hart != 0 -> spin
      addi(t1, x0, 1),
      sw(t1, 0, t0),             // hart 0 publishes the flag
      addi(a0, x0, 0),
      jal(x0, 4 * 4),            // -> exit
      lw(t2, 0, t0),             // spin:
      beq(t2, x0, -1 * 4),
      addi(a0, x0, 0),
  };
  append(&prog, exit_with_a0());
  GuestRunConfig config;
  config.harts = 2;
  const GuestRunResult r = run_words(prog, {}, config);
  ASSERT_TRUE(r.error.ok()) << r.error.code << ": " << r.error.message;
  EXPECT_EQ(r.hart_reports[0].exit_code, 0u);
  EXPECT_EQ(r.hart_reports[1].exit_code, 0u);
}

TEST(GuestInterp, BadBackendAndBadHartsAreStructured) {
  const std::vector<std::uint8_t> elf = corpus::build("faa_counter");
  GuestRunConfig config;
  config.backend = "hw";
  GuestRunResult r = run_guest(elf.data(), elf.size(), config);
  EXPECT_EQ(r.error.code, errc::kBadBackend);

  config.backend = "sim:test";
  config.harts = 0;
  r = run_guest(elf.data(), elf.size(), config);
  EXPECT_EQ(r.error.code, errc::kBadHarts);

  config.harts = 100000;  // more harts than any preset has cores
  r = run_guest(elf.data(), elf.size(), config);
  EXPECT_EQ(r.error.code, errc::kBadHarts);
}

}  // namespace
}  // namespace am::guest
