// Hostile-input contract: no bytes a client can send may crash the guest
// frontend. Every load or run of a corrupted ELF either succeeds or returns
// a structured GuestError — never an exception, never UB (CI runs this
// under ASan). The fuzz loops are deterministic (splitmix64), so a failure
// reproduces from the iteration index alone.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "guest/corpus.hpp"
#include "guest/elf.hpp"
#include "guest/runner.hpp"

namespace am::guest {
namespace {

std::uint64_t splitmix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Loads (and on success runs, briefly) @p elf; asserts the structured-error
/// contract either way.
void load_and_run(const std::vector<std::uint8_t>& elf,
                  const std::string& what) {
  GuestRunConfig config;
  config.backend = "sim:test";
  config.harts = 1;
  config.max_cycles = 200'000;            // corrupt code may spin: tiny caps
  config.guest.max_instructions = 50'000;
  const GuestRunResult r = run_guest(elf.data(), elf.size(), config);
  if (!r.error.ok()) {
    EXPECT_FALSE(r.error.code.empty()) << what;
    EXPECT_FALSE(r.error.message.empty()) << what;
  }
}

TEST(GuestMalformed, EveryTruncationOfAValidElfIsStructured) {
  const std::vector<std::uint8_t> elf = corpus::build("faa_counter");
  // Every prefix of the header region, then coarser steps through the body.
  for (std::size_t len = 0; len < elf.size();
       len += (len < 128 ? 1 : 97)) {
    const std::vector<std::uint8_t> cut(elf.begin(),
                                        elf.begin() + static_cast<long>(len));
    GuestImage image;
    const GuestError err =
        load_elf32(cut.data(), cut.size(), GuestLimits{}, 64u << 10, &image);
    EXPECT_FALSE(err.ok()) << "len=" << len;
    EXPECT_FALSE(err.code.empty()) << "len=" << len;
  }
}

TEST(GuestMalformed, ByteFlipFuzzNeverCrashes) {
  const std::vector<std::uint8_t> base = corpus::build("spinlock");
  std::uint64_t rng = 0x616d2d66757a7aull;  // deterministic
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> elf = base;
    // 1-4 byte flips anywhere in the file (header, phdrs, text, data).
    const int flips = 1 + static_cast<int>(splitmix64(&rng) % 4);
    for (int f = 0; f < flips; ++f) {
      const std::size_t at = splitmix64(&rng) % elf.size();
      elf[at] ^= static_cast<std::uint8_t>(splitmix64(&rng) | 1);
    }
    load_and_run(elf, "flip iteration " + std::to_string(i));
  }
}

TEST(GuestMalformed, RandomGarbageBuffersAreStructured) {
  std::uint64_t rng = 0x67617262616765ull;
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> elf(splitmix64(&rng) % 4096);
    for (auto& b : elf) b = static_cast<std::uint8_t>(splitmix64(&rng));
    // Real magic on half the iterations so parsing reaches the deep paths.
    if (elf.size() >= 4 && i % 2 == 0) {
      elf[0] = 0x7f; elf[1] = 'E'; elf[2] = 'L'; elf[3] = 'F';
    }
    GuestImage image;
    const GuestError err =
        load_elf32(elf.data(), elf.size(), GuestLimits{}, 64u << 10, &image);
    if (!err.ok()) {
      EXPECT_FALSE(err.code.empty()) << i;
    }
  }
}

TEST(GuestMalformed, OverlappingSegmentsAreRefusedNotLoaded) {
  corpus::Elf32Builder b;
  corpus::Elf32Builder::Segment s1;
  s1.vaddr = 0x10000;
  s1.flags = 5;
  s1.bytes.assign(128, 0x13);  // nop sled
  s1.memsz = 128;
  corpus::Elf32Builder::Segment s2 = s1;
  s2.vaddr = 0x1003c;  // straddles s1's tail
  s2.flags = 6;
  b.entry = 0x10000;
  b.segments = {s1, s2};
  const std::vector<std::uint8_t> elf = b.build();
  GuestImage image;
  EXPECT_EQ(load_elf32(elf.data(), elf.size(), GuestLimits{}, 64u << 10,
                       &image).code,
            errc::kElfOverlap);
}

TEST(GuestMalformed, WrongMachineElfIsRefused) {
  std::vector<std::uint8_t> elf = corpus::build("ticket_lock");
  elf[18] = 0x28;  // e_machine = EM_ARM
  elf[19] = 0x00;
  GuestImage image;
  EXPECT_EQ(load_elf32(elf.data(), elf.size(), GuestLimits{}, 64u << 10,
                       &image).code,
            errc::kElfWrongMachine);
}

TEST(GuestMalformed, IllegalInstructionSweepIsStructured) {
  // A spread of non-RV32IMA encodings at the entry point: compressed
  // (2-byte) forms, floating point, system instructions, raw garbage.
  std::uint64_t rng = 0x696c6c6567616cull;
  for (int i = 0; i < 64; ++i) {
    std::uint32_t word = static_cast<std::uint32_t>(splitmix64(&rng));
    if (i % 4 == 0) word = (word & 0xffff0000u) | 0x0001u;  // compressed-ish
    if (i % 4 == 1) word = 0x00000007u | (word & 0xfffff000u);  // FP load
    corpus::Elf32Builder b;
    corpus::Elf32Builder::Segment text;
    text.vaddr = 0x10000;
    text.flags = 5;
    for (int j = 0; j < 4; ++j) {
      text.bytes.push_back(static_cast<std::uint8_t>(word >> (8 * j)));
    }
    text.memsz = 4;
    b.entry = 0x10000;
    b.segments = {text};
    const std::vector<std::uint8_t> elf = b.build();
    load_and_run(elf, "illegal sweep " + std::to_string(i));
  }
}

}  // namespace
}  // namespace am::guest
