// run_guest through the service layer: requests canonicalize by content
// hash (so the sharded LRU and fleet stale-serving work unchanged), repeat
// requests are byte-identical cache hits, and every guest failure surfaces
// as a coded `guest_error` envelope — a broken binary must be
// distinguishable from an unhealthy service.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/base64.hpp"
#include "guest/corpus.hpp"
#include "service/handlers.hpp"
#include "service/protocol.hpp"

namespace am::service {
namespace {

std::string corpus_request(const std::string& name, int harts,
                           const std::string& extra = "") {
  const std::vector<std::uint8_t> elf = am::guest::corpus::build(name);
  const std::string b64 = am::base64_encode(
      std::string_view(reinterpret_cast<const char*>(elf.data()), elf.size()));
  return std::string("{\"kind\":\"run_guest\",\"machine\":\"test\",") +
         "\"harts\":" + std::to_string(harts) + "," + extra + "\"elf\":\"" +
         b64 + "\"}";
}

Request parse_ok(const std::string& line) {
  std::string error;
  const auto r = parse_request(line, &error);
  EXPECT_TRUE(r.has_value()) << error;
  return r.value_or(Request{});
}

TEST(ServiceGuest, ServesAndCachesByteIdentical) {
  ServiceCore core({});
  const Request r = parse_ok(corpus_request("faa_counter", 2));
  const auto first = core.handle(r);
  ASSERT_TRUE(first.ok) << first.response;
  EXPECT_FALSE(first.cache_hit);
  const auto second = core.handle(r);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.response, second.response);
  // The result names the run: completion cycles and the content hash.
  EXPECT_NE(first.response.find("\"completion_cycles\""), std::string::npos);
  EXPECT_NE(first.response.find("\"elf_sha\""), std::string::npos);
}

TEST(ServiceGuest, CanonicalFormHashesContentNotEncoding) {
  // Same bytes, different member order: identical canonical form, and the
  // multi-KB base64 body is replaced by the 32-hex content hash.
  const std::vector<std::uint8_t> elf = am::guest::corpus::build("spinlock");
  const std::string b64 = am::base64_encode(
      std::string_view(reinterpret_cast<const char*>(elf.data()), elf.size()));
  const Request a = parse_ok(
      R"({"kind":"run_guest","machine":"test","harts":2,"elf":")" + b64 +
      "\"}");
  const Request b = parse_ok(
      R"({"harts":2,"elf":")" + b64 + R"(","machine":"test","kind":"run_guest"})");
  EXPECT_EQ(canonical_request(a), canonical_request(b));
  const std::string sha = guest_elf_sha(
      std::string_view(reinterpret_cast<const char*>(elf.data()), elf.size()));
  EXPECT_NE(canonical_request(a).find(sha), std::string::npos);
  EXPECT_EQ(canonical_request(a).find(b64), std::string::npos);
  EXPECT_LT(canonical_request(a).size(), 256u);
}

TEST(ServiceGuest, GarbageElfIsCodedGuestError) {
  ServiceCore core({});
  const std::string b64 = am::base64_encode("this is not an elf at all");
  const Request r = parse_ok(
      R"({"kind":"run_guest","machine":"test","harts":1,"elf":")" + b64 +
      "\"}");
  const auto result = core.handle(r);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(response_error_code(result.response), errcode::kGuestError);
  // The guest-level code rides in the message for client-side dispatch.
  EXPECT_NE(result.response.find("elf_"), std::string::npos);
}

TEST(ServiceGuest, TooManyHartsForMachineIsCodedGuestError) {
  ServiceCore core({});
  const Request r = parse_ok(corpus_request("faa_counter", 256));
  const auto result = core.handle(r);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(response_error_code(result.response), errcode::kGuestError);
  EXPECT_NE(result.response.find("bad_harts"), std::string::npos);
}

TEST(ServiceGuest, ServiceCeilingsAbortRunawayGuests) {
  ServiceConfig config;
  config.guest_max_cycles = 20'000;
  config.guest_max_instructions = 5'000;
  ServiceCore core(config);
  // treiber_push at 2 harts needs far more than 5k instructions.
  const Request r = parse_ok(corpus_request("treiber_push", 2));
  const auto result = core.handle(r);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(response_error_code(result.response), errcode::kGuestError);
}

TEST(ServiceGuest, ParseRejectsBadRequests) {
  std::string error;
  // Missing elf.
  EXPECT_FALSE(parse_request(
      R"({"kind":"run_guest","machine":"test","harts":1})", &error)
      .has_value());
  // Invalid base64.
  EXPECT_FALSE(parse_request(
      R"({"kind":"run_guest","machine":"test","harts":1,"elf":"@@@"})", &error)
      .has_value());
  // Hart count outside 1..256.
  EXPECT_FALSE(parse_request(corpus_request("spinlock", 0), &error)
      .has_value());
  EXPECT_FALSE(parse_request(corpus_request("spinlock", 257), &error)
      .has_value());
  // Oversized ELF (decoded > kMaxGuestElfBytes).
  const std::string big = am::base64_encode(std::string(kMaxGuestElfBytes + 1,
                                                        'x'));
  EXPECT_FALSE(parse_request(
      R"({"kind":"run_guest","machine":"test","harts":1,"elf":")" + big +
      "\"}", &error).has_value());
}

TEST(ServiceGuest, MemoryModelSelectsTso) {
  ServiceCore core({});
  const Request r = parse_ok(
      corpus_request("spinlock", 2, R"("memory_model":"tso",)"));
  const auto result = core.handle(r);
  ASSERT_TRUE(result.ok) << result.response;
  EXPECT_NE(result.response.find("\"memory_model\":\"tso\""),
            std::string::npos);
}

}  // namespace
}  // namespace am::service
