#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "perfmon/rapl.hpp"

namespace am {
namespace {

namespace fs = std::filesystem;

/// Builds a fake powercap sysfs tree so the reader can be tested without
/// RAPL hardware (which this environment lacks).
class FakePowercap : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() / "am_rapl_test";
    fs::remove_all(root_);
    fs::create_directories(root_ / "intel-rapl:0");
    fs::create_directories(root_ / "intel-rapl:0:0");
    write(root_ / "intel-rapl:0" / "name", "package-0");
    write(root_ / "intel-rapl:0" / "energy_uj", "1000000");  // 1 J
    write(root_ / "intel-rapl:0" / "max_energy_range_uj", "262143328850");
    write(root_ / "intel-rapl:0:0" / "name", "dram");
    write(root_ / "intel-rapl:0:0" / "energy_uj", "500000");  // 0.5 J
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const fs::path& p, const std::string& content) {
    std::ofstream out(p);
    out << content << "\n";
  }
  void set_energy(const std::string& zone, const std::string& uj) {
    write(root_ / zone / "energy_uj", uj);
  }

  fs::path root_;
};

TEST_F(FakePowercap, DiscoversZones) {
  Rapl rapl(root_.string());
  EXPECT_TRUE(rapl.available());
  EXPECT_EQ(rapl.package_zone_count(), 1u);
  EXPECT_EQ(rapl.dram_zone_count(), 1u);
}

TEST_F(FakePowercap, ReadsJoules) {
  Rapl rapl(root_.string());
  const EnergyReading r = rapl.read();
  EXPECT_TRUE(r.package_valid);
  EXPECT_TRUE(r.dram_valid);
  EXPECT_NEAR(r.package_j, 1.0, 1e-9);
  EXPECT_NEAR(r.dram_j, 0.5, 1e-9);
}

TEST_F(FakePowercap, DeltaBetweenReadings) {
  Rapl rapl(root_.string());
  const EnergyReading before = rapl.read();
  set_energy("intel-rapl:0", "1250000");
  set_energy("intel-rapl:0:0", "600000");
  const EnergyReading after = rapl.read();
  const EnergyReading delta = after - before;
  EXPECT_NEAR(delta.package_j, 0.25, 1e-9);
  EXPECT_NEAR(delta.dram_j, 0.1, 1e-9);
}

TEST_F(FakePowercap, WraparoundClampsToZero) {
  Rapl rapl(root_.string());
  const EnergyReading before = rapl.read();
  set_energy("intel-rapl:0", "100");  // counter wrapped
  const EnergyReading after = rapl.read();
  const EnergyReading delta = after - before;
  EXPECT_DOUBLE_EQ(delta.package_j, 0.0);
}

TEST(RaplMissing, UnavailableWithoutSysfs) {
  Rapl rapl("/nonexistent/powercap");
  EXPECT_FALSE(rapl.available());
  const EnergyReading r = rapl.read();
  EXPECT_FALSE(r.package_valid);
  EXPECT_FALSE(r.dram_valid);
}

TEST(EnergyReadingOps, ValidityPropagates) {
  EnergyReading a;
  a.package_valid = true;
  a.package_j = 2.0;
  EnergyReading b;
  b.package_valid = false;
  const EnergyReading d = a - b;
  EXPECT_FALSE(d.package_valid);
}

}  // namespace
}  // namespace am
