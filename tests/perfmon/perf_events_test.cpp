// perf_event availability differs wildly across hosts/containers; these
// tests pin down the graceful-degradation contract rather than counter
// values.
#include <gtest/gtest.h>

#include "common/cpu.hpp"
#include "perfmon/perf_events.hpp"

namespace am {
namespace {

TEST(PerfEvents, Names) {
  EXPECT_STREQ(to_string(PerfEvent::kCycles), "cycles");
  EXPECT_STREQ(to_string(PerfEvent::kCacheMisses), "cache-misses");
  EXPECT_STREQ(to_string(PerfEvent::kTaskClockNs), "task-clock");
}

TEST(PerfEvents, LifecycleNeverThrows) {
  PerfCounterGroup g({PerfEvent::kCycles, PerfEvent::kInstructions,
                      PerfEvent::kTaskClockNs});
  g.reset();
  g.enable();
  long sink = 0;
  for (long i = 0; i < 100000; ++i) sink += i;
  do_not_optimize(sink);
  g.disable();
  const PerfSample s = g.read();
  // Either counters opened (then they counted something) or none did.
  if (g.available()) {
    EXPECT_FALSE(s.counts.empty());
  } else {
    EXPECT_TRUE(s.counts.empty());
  }
}

TEST(PerfEvents, LiveEventsSubsetOfRequested) {
  PerfCounterGroup g({PerfEvent::kCycles, PerfEvent::kBranchMisses});
  const auto live = g.live_events();
  EXPECT_LE(live.size(), 2u);
}

TEST(PerfEvents, TaskClockCountsWhenAvailable) {
  PerfCounterGroup g({PerfEvent::kTaskClockNs});
  if (!g.available()) GTEST_SKIP() << "perf_event_open not permitted here";
  g.enable();
  long sink = 0;
  for (long i = 0; i < 2'000'000; ++i) sink += i;
  do_not_optimize(sink);
  g.disable();
  const auto v = g.read().get(PerfEvent::kTaskClockNs);
  ASSERT_TRUE(v.has_value());
  EXPECT_GT(*v, 0u);
}

TEST(PerfEvents, MoveTransfersOwnership) {
  PerfCounterGroup a({PerfEvent::kTaskClockNs});
  const bool was_available = a.available();
  PerfCounterGroup b = std::move(a);
  EXPECT_EQ(b.available(), was_available);
  EXPECT_FALSE(a.available());  // NOLINT(bugprone-use-after-move)
}

TEST(PerfSample, GetMissingReturnsNullopt) {
  PerfSample s;
  EXPECT_EQ(s.get(PerfEvent::kCycles), std::nullopt);
  s.counts.emplace_back(PerfEvent::kCycles, 42);
  EXPECT_EQ(s.get(PerfEvent::kCycles), 42u);
}

}  // namespace
}  // namespace am
