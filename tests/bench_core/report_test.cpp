#include <gtest/gtest.h>

#include <sstream>

#include "bench_core/report.hpp"
#include "bench_core/sim_backend.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "sim/config.hpp"

namespace am::bench {
namespace {

/// Runs one instrumented high-contention workload and returns the parsed
/// report document.
JsonValue make_report(std::uint32_t threads, Primitive prim) {
  clear_run_log();
  SimBackend backend(sim::test_machine(4));
  backend.set_line_profiling(true);
  backend.set_epoch_cycles(backend.options().measure_cycles / 8);
  WorkloadConfig w;
  w.mode = WorkloadMode::kHighContention;
  w.prim = prim;
  w.threads = threads;
  backend.run(w);

  Table table({"threads", "ops"});
  table.add_row({"4", "1234"});
  ReportMeta meta;
  meta.bench = "report_test";
  meta.title = "round trip";
  meta.backend = "sim:test";
  meta.machine = backend.machine_name();
  meta.command = "report_test --backend sim:test";
  meta.wall_time_s = 0.25;

  std::ostringstream os;
  write_run_report(os, meta, &table, run_log());
  std::string error;
  auto doc = JsonValue::parse(os.str(), &error);
  EXPECT_TRUE(doc.has_value()) << error;
  return doc.value_or(JsonValue{});
}

TEST(RunLog, RecordsEveryRunThroughTheSeam) {
  clear_run_log();
  SimBackend backend(sim::test_machine(4));
  WorkloadConfig w;
  w.prim = Primitive::kFaa;
  w.threads = 2;
  backend.run(w);
  w.threads = 4;
  backend.run(w);
  ASSERT_EQ(run_log().size(), 2u);
  EXPECT_EQ(run_log()[0].workload.threads, 2u);
  EXPECT_EQ(run_log()[1].workload.threads, 4u);
  EXPECT_EQ(run_log()[1].run.threads.size(), 4u);
  clear_run_log();
  EXPECT_TRUE(run_log().empty());
}

TEST(RunReport, RoundTripsMetaTableAndRuns) {
  const JsonValue doc = make_report(4, Primitive::kFaa);
  EXPECT_EQ(doc.find("schema")->as_string(), "am-run-report/1");

  const JsonValue* meta = doc.find("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->find("bench")->as_string(), "report_test");
  EXPECT_EQ(meta->find("machine")->as_string(), "test-uniform");
  EXPECT_DOUBLE_EQ(meta->find("wall_time_s")->as_number(), 0.25);

  const JsonValue* table = doc.find("table");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->find("columns")->size(), 2u);
  EXPECT_EQ(table->find("rows")->at(0)->at(1)->as_string(), "1234");

  const JsonValue* runs = doc.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->size(), 1u);
  const JsonValue& run = *runs->at(0);

  EXPECT_EQ(run.find("workload")->find("prim")->as_string(), "FAA");
  EXPECT_EQ(run.find("workload")->find("threads")->as_number(), 4.0);
  EXPECT_GT(run.find("totals")->find("ops")->as_number(), 0.0);
  ASSERT_EQ(run.find("threads")->size(), 4u);
  EXPECT_GT(run.find("threads")->at(0)->find("ops")->as_number(), 0.0);
  // Simulator histograms always sample tails: p99 is a number here.
  EXPECT_EQ(run.find("threads")->at(0)->find("p99_latency_cycles")->type(),
            JsonValue::Type::kNumber);
  EXPECT_GT(run.find("threads")
                ->at(0)
                ->find("ops_by_prim")
                ->find("FAA")
                ->as_number(),
            0.0);

  const JsonValue* coherence = run.find("coherence");
  ASSERT_NE(coherence, nullptr);
  EXPECT_GT(coherence->find("transfers")->find("near")->as_number(), 0.0);
  ASSERT_NE(coherence->find("evictions"), nullptr);

  const JsonValue* hot = run.find("hot_lines");
  ASSERT_NE(hot, nullptr);
  ASSERT_GT(hot->size(), 0u);
  EXPECT_EQ(hot->at(0)->find("line")->as_number(), 0.0);
  EXPECT_GT(hot->at(0)->find("acquisitions")->as_number(), 0.0);
  EXPECT_GT(hot->at(0)->find("mean_queue_depth")->as_number(), 0.0);
  ASSERT_NE(hot->at(0)->find("supply")->find("near"), nullptr);

  const JsonValue* epochs = run.find("epochs");
  ASSERT_NE(epochs, nullptr);
  EXPECT_GE(epochs->size(), 8u);
  EXPECT_GT(epochs->at(0)->find("throughput_ops_per_kcycle")->as_number(),
            0.0);
  EXPECT_GT(run.find("epoch_cycles")->as_number(), 0.0);
}

TEST(RunReport, InvalidLatencyTailSerializesAsNull) {
  clear_run_log();
  MeasuredRun r;
  r.backend = "hw";
  r.machine = "host";
  ThreadResult t;
  t.ops = 10;
  t.latency_tail_valid = false;  // e.g. no sampled op fell in the window
  r.threads.push_back(t);
  std::ostringstream os;
  write_run_report(os, ReportMeta{}, nullptr,
                   {RecordedRun{WorkloadConfig{}, r}});
  const auto doc = JsonValue::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* thread =
      doc->find("runs")->at(0)->find("threads")->at(0);
  ASSERT_NE(thread, nullptr);
  EXPECT_TRUE(thread->find("p99_latency_cycles")->is_null());
  // Energy/perf were never measured either: null, not a misleading 0.
  EXPECT_TRUE(
      doc->find("runs")->at(0)->find("energy")->find("package_j")->is_null());
}

TEST(SimBackendObs, CarriesEvictionsAndPerPrimCounts) {
  // A working set far over the cache capacity forces capacity evictions.
  sim::MachineConfig cfg = sim::test_machine(2);
  cfg.cache_capacity_lines = 8;
  SimBackend backend(cfg);
  backend.set_line_profiling(true);
  WorkloadConfig w;
  w.mode = WorkloadMode::kPrivateWalk;
  w.prim = Primitive::kFaa;
  w.threads = 2;
  w.lines_per_thread = 64;
  const MeasuredRun r = backend.run(w);
  EXPECT_GT(r.evictions, 0u);
  for (const auto& t : r.threads) {
    EXPECT_EQ(t.ops_by_prim[static_cast<std::size_t>(Primitive::kFaa)], t.ops);
    EXPECT_EQ(t.successes_by_prim[static_cast<std::size_t>(Primitive::kFaa)],
              t.successes);
    EXPECT_TRUE(t.latency_tail_valid);
  }
  // The walk touches many lines; the profiler saw them all.
  EXPECT_GT(r.hot_lines.size(), 64u);
}

}  // namespace
}  // namespace am::bench
