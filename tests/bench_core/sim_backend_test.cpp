#include <gtest/gtest.h>

#include "bench_core/backend.hpp"
#include "bench_core/sim_backend.hpp"
#include "sim/config.hpp"

namespace am::bench {
namespace {

TEST(SimBackend, RunsAllWorkloadModes) {
  SimBackend backend(sim::test_machine(8));
  for (WorkloadMode mode :
       {WorkloadMode::kHighContention, WorkloadMode::kLowContention,
        WorkloadMode::kZipf, WorkloadMode::kMixedReadWrite}) {
    WorkloadConfig w;
    w.mode = mode;
    w.prim = Primitive::kFaa;
    w.threads = 4;
    const MeasuredRun r = backend.run(w);
    EXPECT_GT(r.total_ops(), 0u) << to_string(mode);
    EXPECT_EQ(r.backend, "sim");
    EXPECT_EQ(r.threads.size(), 4u);
    EXPECT_TRUE(r.energy_valid);
  }
}

TEST(SimBackend, DeterministicGivenSeed) {
  SimBackend backend(sim::xeon_e5_2x18());
  WorkloadConfig w;
  w.mode = WorkloadMode::kHighContention;
  w.prim = Primitive::kCas;
  w.threads = 12;
  w.seed = 5;
  const MeasuredRun a = backend.run(w);
  const MeasuredRun b = backend.run(w);
  EXPECT_EQ(a.total_ops(), b.total_ops());
  EXPECT_EQ(a.total_successes(), b.total_successes());
}

TEST(SimBackend, SeedChangesStochasticRuns) {
  SimBackend backend(sim::xeon_e5_2x18());
  WorkloadConfig w;
  w.mode = WorkloadMode::kZipf;
  w.prim = Primitive::kFaa;
  w.threads = 8;
  w.seed = 1;
  const MeasuredRun a = backend.run(w);
  w.seed = 2;
  const MeasuredRun b = backend.run(w);
  EXPECT_NE(a.total_ops(), b.total_ops());
}

TEST(SimBackend, RejectsOversizedWorkload) {
  SimBackend backend(sim::test_machine(2));
  WorkloadConfig w;
  w.threads = 3;
  EXPECT_THROW(backend.run(w), std::invalid_argument);
}

TEST(SimBackend, ReportsMachineMetadata) {
  SimBackend backend(sim::knl_64());
  EXPECT_EQ(backend.name(), "sim");
  EXPECT_EQ(backend.machine_name(), "knl-64");
  EXPECT_EQ(backend.max_threads(), 64u);
  EXPECT_DOUBLE_EQ(backend.freq_ghz(), 1.4);
}

TEST(MakeBackend, ParsesSpecs) {
  EXPECT_EQ(make_backend("sim:knl")->machine_name(), "knl-64");
  EXPECT_EQ(make_backend("sim:xeon")->machine_name(), "xeon-e5-2x18");
  EXPECT_EQ(make_backend("sim")->machine_name(), "xeon-e5-2x18");
  EXPECT_EQ(make_backend("hw")->name(), "hw");
  const auto backend = make_backend("auto");
  EXPECT_TRUE(backend->name() == "hw" || backend->name() == "sim");
}

}  // namespace
}  // namespace am::bench
