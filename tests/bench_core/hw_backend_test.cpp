// Hardware backend: correctness of the measurement plumbing. Contention
// *numbers* are meaningless on a small host, but counts, metadata and
// energy handling must be right anywhere.
#include <gtest/gtest.h>

#include "bench_core/hw_backend.hpp"

namespace am::bench {
namespace {

HwBackendOptions quick() {
  HwBackendOptions o;
  o.warmup_s = 0.01;
  o.measure_s = 0.05;
  return o;
}

TEST(HwBackend, SingleThreadFaaRuns) {
  HardwareBackend backend(quick());
  WorkloadConfig w;
  w.mode = WorkloadMode::kHighContention;
  w.prim = Primitive::kFaa;
  w.threads = 1;
  const MeasuredRun r = backend.run(w);
  EXPECT_EQ(r.backend, "hw");
  EXPECT_EQ(r.threads.size(), 1u);
  EXPECT_GT(r.total_ops(), 1000u);  // even a slow host does >20k ops/ms
  EXPECT_GT(r.duration_cycles, 0.0);
  EXPECT_DOUBLE_EQ(r.success_rate(), 1.0);
}

TEST(HwBackend, TwoThreadsBothMakeProgress) {
  HardwareBackend backend(quick());
  WorkloadConfig w;
  w.mode = WorkloadMode::kHighContention;
  w.prim = Primitive::kFaa;
  w.threads = 2;
  const MeasuredRun r = backend.run(w);
  EXPECT_GT(r.threads[0].ops, 0u);
  EXPECT_GT(r.threads[1].ops, 0u);
}

TEST(HwBackend, CasLoopAttemptsAtLeastOps) {
  HardwareBackend backend(quick());
  WorkloadConfig w;
  w.mode = WorkloadMode::kHighContention;
  w.prim = Primitive::kCasLoop;
  w.threads = 2;
  const MeasuredRun r = backend.run(w);
  EXPECT_GE(r.total_attempts(), r.total_ops());
  EXPECT_DOUBLE_EQ(r.success_rate(), 1.0);  // CASLOOP ops always complete
}

TEST(HwBackend, LatencySamplesCollected) {
  HardwareBackend backend(quick());
  WorkloadConfig w;
  w.mode = WorkloadMode::kLowContention;
  w.prim = Primitive::kFaa;
  w.threads = 1;
  const MeasuredRun r = backend.run(w);
  // On a timeshared host a few scheduler outliers can push the *mean* far
  // above the p99, so only existence/positivity is asserted here.
  EXPECT_GT(r.threads[0].mean_latency_cycles, 0.0);
  EXPECT_GT(r.threads[0].p99_latency_cycles, 0.0);
}

TEST(HwBackend, WorkReducesThroughput) {
  HardwareBackend backend(quick());
  WorkloadConfig fast;
  fast.mode = WorkloadMode::kLowContention;
  fast.prim = Primitive::kFaa;
  fast.threads = 1;
  WorkloadConfig slow = fast;
  slow.work = 2000;
  const auto r_fast = backend.run(fast);
  const auto r_slow = backend.run(slow);
  EXPECT_LT(r_slow.total_ops(), r_fast.total_ops() / 2);
}

TEST(HwBackend, MetadataPlausible) {
  HardwareBackend backend(quick());
  EXPECT_EQ(backend.name(), "hw");
  EXPECT_GE(backend.max_threads(), 1u);
  EXPECT_GT(backend.freq_ghz(), 0.05);
  EXPECT_LT(backend.freq_ghz(), 10.0);
}

TEST(HwBackend, PerfCountersGracefulEverywhere) {
  HwBackendOptions opts = quick();
  opts.collect_perf_counters = true;
  HardwareBackend backend(opts);
  WorkloadConfig w;
  w.mode = WorkloadMode::kLowContention;
  w.prim = Primitive::kFaa;
  w.threads = 1;
  const MeasuredRun r = backend.run(w);
  // Either the kernel allowed counters (then they counted something
  // plausible) or it did not (then the record is absent) — never garbage.
  if (r.perf_valid) {
    EXPECT_GT(r.perf_cycles, 0u);
    EXPECT_GT(r.perf_instructions, 0u);
    // Instructions per op is small for an FAA loop: sanity-bound it.
    EXPECT_LT(r.perf_instructions / std::max<std::uint64_t>(1, r.total_ops()),
              10'000u);
  } else {
    EXPECT_EQ(r.perf_cycles, 0u);
    EXPECT_EQ(r.perf_instructions, 0u);
  }
}

TEST(HwBackend, PerfCountersCanBeDisabled) {
  HwBackendOptions opts = quick();
  opts.collect_perf_counters = false;
  HardwareBackend backend(opts);
  WorkloadConfig w;
  w.threads = 1;
  const MeasuredRun r = backend.run(w);
  EXPECT_FALSE(r.perf_valid);
}

TEST(HwBackend, ShardedModeCountsExactly) {
  HardwareBackend backend(quick());
  WorkloadConfig w;
  w.mode = WorkloadMode::kSharded;
  w.prim = Primitive::kFaa;
  w.threads = 2;
  w.shards = 2;
  const MeasuredRun r = backend.run(w);
  EXPECT_GT(r.total_ops(), 0u);
  EXPECT_DOUBLE_EQ(r.success_rate(), 1.0);
}

TEST(HwBackend, PrivateWalkRuns) {
  HardwareBackend backend(quick());
  WorkloadConfig w;
  w.mode = WorkloadMode::kPrivateWalk;
  w.prim = Primitive::kFaa;
  w.threads = 1;
  w.lines_per_thread = 64;
  const MeasuredRun r = backend.run(w);
  EXPECT_GT(r.total_ops(), 1000u);
}

TEST(HwBackend, MixedReadWriteSplitsRoughlyByFraction) {
  HardwareBackend backend(quick());
  WorkloadConfig w;
  w.mode = WorkloadMode::kMixedReadWrite;
  w.prim = Primitive::kCas;  // writes may fail; reads always succeed
  w.threads = 1;
  w.write_fraction = 0.25;
  const MeasuredRun r = backend.run(w);
  // Single thread: every CAS succeeds too — but the mix is what matters:
  // total ops positive and no failures with one thread.
  EXPECT_GT(r.total_ops(), 0u);
  EXPECT_DOUBLE_EQ(r.success_rate(), 1.0);
}

TEST(HwBackend, ZipfModeTouchesManyCells) {
  HardwareBackend backend(quick());
  WorkloadConfig w;
  w.mode = WorkloadMode::kZipf;
  w.prim = Primitive::kFaa;
  w.threads = 1;
  w.zipf_lines = 32;
  w.zipf_s = 0.5;
  const MeasuredRun r = backend.run(w);
  EXPECT_GT(r.total_ops(), 0u);
}

}  // namespace
}  // namespace am::bench
