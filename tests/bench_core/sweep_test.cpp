// SweepEngine contract tests: the determinism golden test (byte-identical
// run logs and reports at any --jobs), per-point seed replay, bit-exact
// result caching, and a TSan-targeted stress mix. The pool-overlap check
// uses a sleeping fake backend so it holds even on a 1-core CI host.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "bench_core/report.hpp"
#include "bench_core/sim_backend.hpp"
#include "bench_core/sweep.hpp"
#include "sim/config.hpp"

namespace am::bench {
namespace {

// Short windows keep each simulated point cheap; results stay nontrivial.
constexpr SimBackendOptions kFastSim{2'000, 10'000};

SweepEngine::BackendFactory test_sim_factory() {
  return [](std::uint64_t seed) -> std::unique_ptr<ExecutionBackend> {
    return std::make_unique<SimBackend>(sim::preset_by_name("test"), kFastSim,
                                        seed);
  };
}

std::vector<WorkloadConfig> sample_grid() {
  std::vector<WorkloadConfig> grid;
  for (std::uint32_t threads : {2u, 4u}) {
    for (Primitive prim : {Primitive::kFaa, Primitive::kCasLoop}) {
      WorkloadConfig w;
      w.mode = WorkloadMode::kHighContention;
      w.prim = prim;
      w.threads = threads;
      grid.push_back(w);
    }
  }
  WorkloadConfig zipf;
  zipf.mode = WorkloadMode::kZipf;
  zipf.threads = 4;
  zipf.zipf_lines = 32;
  zipf.zipf_s = 0.9;
  grid.push_back(zipf);
  return grid;
}

// Renders the current run log exactly as --json-out would, with wall-clock
// metadata pinned so byte comparison is meaningful.
std::string report_of_run_log() {
  ReportMeta meta;
  meta.bench = "sweep_test";
  meta.title = "golden";
  meta.backend = "sim:test";
  meta.machine = "test";
  meta.command = "sweep_test";
  meta.wall_time_s = 0.0;
  std::ostringstream os;
  write_run_report(os, meta, nullptr, run_log());
  return os.str();
}

std::string run_grid(unsigned jobs, const std::string& cache_dir,
                     std::size_t* executed = nullptr,
                     std::size_t* hits = nullptr) {
  clear_run_log();
  SweepOptions opts;
  opts.jobs = jobs;
  opts.cache_dir = cache_dir;
  opts.base_seed = 42;
  SweepEngine engine(test_sim_factory(), opts);
  for (const WorkloadConfig& w : sample_grid()) engine.submit(w);
  engine.drain();
  if (executed != nullptr) *executed = engine.executed_points();
  if (hits != nullptr) *hits = engine.cache_hits();
  return report_of_run_log();
}

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* tag) {
    path = std::filesystem::temp_directory_path() /
           (std::string("am_sweep_test_") + tag + "_" +
            std::to_string(static_cast<unsigned long>(::getpid())));
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(PointSeed, DeterministicDistinctAndNeverZero) {
  EXPECT_EQ(point_seed(1, 0), point_seed(1, 0));
  std::vector<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t s = point_seed(7, i);
    EXPECT_NE(s, 0u);
    seen.push_back(s);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
  EXPECT_NE(point_seed(1, 3), point_seed(2, 3));
}

// The golden test: the same grid at jobs=1 and jobs=8 must produce
// byte-identical run logs, hence byte-identical am-run-report documents.
TEST(SweepDeterminism, RunLogIdenticalAcrossJobs) {
  const std::string serial = run_grid(1, "");
  const std::string pooled = run_grid(8, "");
  EXPECT_EQ(serial, pooled);
  EXPECT_NE(serial.find("am-run-report/1"), std::string::npos);
  clear_run_log();
}

// Any pooled point is replayable in isolation: same preset, same workload,
// seed = point_seed(base, i) reproduces the pooled MeasuredRun bit-exactly.
TEST(SweepDeterminism, PerPointReplayReproducesPooledResult) {
  clear_run_log();
  SweepOptions opts;
  opts.jobs = 4;
  opts.base_seed = 42;
  SweepEngine engine(test_sim_factory(), opts);
  const std::vector<WorkloadConfig> grid = sample_grid();
  for (const WorkloadConfig& w : grid) engine.submit(w);
  engine.drain();

  for (std::size_t i = 0; i < grid.size(); ++i) {
    SimBackend replay(sim::preset_by_name("test"), kFastSim,
                      point_seed(42, i));
    std::vector<RecordedRun> local;
    replay.set_run_recorder(&local);
    const MeasuredRun rerun = replay.run(grid[i]);
    EXPECT_EQ(serialize_measured_run(rerun, "k"),
              serialize_measured_run(engine.result(i), "k"))
        << "point " << i << " not replayable";
  }
  clear_run_log();
}

TEST(SweepCache, SerializationRoundTripsBitExactly) {
  MeasuredRun run;
  run.backend = "sim";
  run.machine = "test \"quoted\" \xE2\x9C\x93";  // exercises JSON escaping
  run.duration_cycles = 10'000.0;
  run.freq_ghz = 0.1 + 0.2;  // not exactly 0.3: bit pattern must survive
  ThreadResult t;
  t.ops = 123;
  t.attempts = 456;
  t.mean_latency_cycles = std::numeric_limits<double>::denorm_min();
  t.p99_latency_cycles = -0.0;
  t.latency_tail_valid = true;
  t.ops_by_prim[2] = 99;
  run.threads.push_back(t);
  run.transfers[1] = 7;
  run.hot_lines.push_back(LineHotness{5, 10, 9, 3, 1.5, 4, 2.25, {1, 2, 3, 4}});
  run.epochs.push_back(EpochPoint{0.0, 5, 6, 0.5, 0.25, 2});
  run.epoch_cycles = 1000.0;
  run.energy_valid = true;
  run.energy_package_j = 1e-9;

  const std::string key = "deadbeefdeadbeef";
  const std::string text = serialize_measured_run(run, key);
  const auto parsed = parse_measured_run(text, key);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(serialize_measured_run(*parsed, key), text);
  // -0.0 and the denormal survive exactly (they would not through "%.12g").
  EXPECT_TRUE(std::signbit(parsed->threads[0].p99_latency_cycles));
  EXPECT_EQ(parsed->threads[0].mean_latency_cycles,
            std::numeric_limits<double>::denorm_min());

  // A document written under another key is rejected (stale/collided file).
  EXPECT_FALSE(parse_measured_run(text, "0000000000000000").has_value());
  // Corrupt documents are a miss, not a crash.
  EXPECT_FALSE(parse_measured_run(text.substr(0, text.size() / 2), key)
                   .has_value());
  EXPECT_FALSE(parse_measured_run("not json", key).has_value());
}

TEST(SweepCache, WarmRerunSimulatesNothingAndMatchesByteForByte) {
  TempDir dir("cache");
  std::size_t executed = 0, hits = 0;
  const std::string cold = run_grid(3, dir.path.string(), &executed, &hits);
  const std::size_t n = sample_grid().size();
  EXPECT_EQ(executed, n);
  EXPECT_EQ(hits, 0u);

  const std::string warm = run_grid(3, dir.path.string(), &executed, &hits);
  EXPECT_EQ(executed, 0u) << "warm cache rerun must simulate zero points";
  EXPECT_EQ(hits, n);
  EXPECT_EQ(cold, warm);

  // The cache key sees the seed: a different base seed must miss.
  clear_run_log();
  SweepOptions opts;
  opts.jobs = 2;
  opts.cache_dir = dir.path.string();
  opts.base_seed = 43;
  SweepEngine engine(test_sim_factory(), opts);
  for (const WorkloadConfig& w : sample_grid()) engine.submit(w);
  engine.drain();
  EXPECT_EQ(engine.executed_points(), n);
  clear_run_log();
}

// A backend that sleeps instead of computing: overlap is observable even on
// a single-core host, where CPU-bound points cannot speed up.
class SleepingBackend final : public ExecutionBackend {
 public:
  explicit SleepingBackend(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "fake"; }
  std::string machine_name() const override { return "fake"; }
  std::uint32_t max_threads() const override { return 64; }
  double freq_ghz() const override { return 1.0; }

 protected:
  MeasuredRun do_run(const WorkloadConfig& config) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    MeasuredRun r;
    r.backend = "fake";
    r.machine = "fake";
    r.duration_cycles = 1000.0;
    ThreadResult t;
    t.ops = seed_ ^ config.seed;  // marks which seed produced the result
    r.threads.push_back(t);
    return r;
  }

 private:
  std::uint64_t seed_;
};

TEST(SweepPool, PointsOverlapInTime) {
  clear_run_log();
  SweepOptions opts;
  opts.jobs = 8;
  SweepEngine engine(
      [](std::uint64_t seed) -> std::unique_ptr<ExecutionBackend> {
        return std::make_unique<SleepingBackend>(seed);
      },
      opts);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 8; ++i) engine.submit(WorkloadConfig{});
  engine.drain();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Serial would take 8 x 30ms = 240ms; overlapped, well under half that.
  EXPECT_LT(elapsed, std::chrono::milliseconds(120))
      << "8 sleeping points did not overlap";
  EXPECT_EQ(run_log().size(), 8u);
  clear_run_log();
}

// TSan target: many quick points and tasks racing through a narrow pool,
// with stats polled concurrently. Ordering must still equal submission.
TEST(SweepStress, MixedPointsAndTasksKeepSubmissionOrder) {
  clear_run_log();
  SweepOptions opts;
  opts.jobs = 4;
  opts.base_seed = 9;
  SweepEngine engine(
      [](std::uint64_t seed) -> std::unique_ptr<ExecutionBackend> {
        return std::make_unique<SleepingBackend>(seed);
      },
      opts);

  constexpr int kPoints = 48;
  std::atomic<int> task_runs{0};
  for (int i = 0; i < kPoints; ++i) {
    if (i % 5 == 0) {
      engine.submit_task(
          [&task_runs](std::uint64_t seed, std::vector<RecordedRun>& log) {
            SleepingBackend b(seed);
            b.set_run_recorder(&log);
            WorkloadConfig w;
            w.seed = 77;
            (void)b.run(w);
            task_runs.fetch_add(1, std::memory_order_relaxed);
          });
    } else {
      WorkloadConfig w;
      w.seed = static_cast<std::uint64_t>(i);
      engine.submit(w);
    }
    (void)engine.executed_points();  // concurrent stats reads under TSan
    (void)engine.cache_hits();
  }
  engine.drain();

  ASSERT_EQ(run_log().size(), static_cast<std::size_t>(kPoints));
  EXPECT_EQ(task_runs.load(), (kPoints + 4) / 5);
  for (int i = 0; i < kPoints; ++i) {
    const RecordedRun& rec = run_log()[static_cast<std::size_t>(i)];
    const std::uint64_t expect_seed =
        i % 5 == 0 ? 77u : static_cast<std::uint64_t>(i);
    EXPECT_EQ(rec.workload.seed, expect_seed) << "slot " << i;
    ASSERT_EQ(rec.run.threads.size(), 1u);
    EXPECT_EQ(rec.run.threads[0].ops,
              point_seed(9, static_cast<std::uint64_t>(i)) ^ expect_seed)
        << "slot " << i << " ran under the wrong point seed";
  }
  clear_run_log();
}

TEST(SweepEngineErrors, DrainRethrowsFirstFailureAfterFlushingPredecessors) {
  clear_run_log();
  SweepOptions opts;
  opts.jobs = 2;
  SweepEngine engine(
      [](std::uint64_t seed) -> std::unique_ptr<ExecutionBackend> {
        return std::make_unique<SleepingBackend>(seed);
      },
      opts);
  engine.submit(WorkloadConfig{});
  engine.submit_task([](std::uint64_t, std::vector<RecordedRun>&) {
    throw std::runtime_error("point exploded");
  });
  engine.submit(WorkloadConfig{});
  EXPECT_THROW(engine.drain(), std::runtime_error);
  EXPECT_EQ(run_log().size(), 1u) << "points before the failure still flush";
  clear_run_log();
}

}  // namespace
}  // namespace am::bench
