// SweepEngine contract tests: the determinism golden test (byte-identical
// run logs and reports at any --jobs), per-point seed replay, bit-exact
// result caching, and a TSan-targeted stress mix. The pool-overlap check
// uses a sleeping fake backend so it holds even on a 1-core CI host.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "bench_core/report.hpp"
#include "bench_core/sim_backend.hpp"
#include "bench_core/sweep.hpp"
#include "bench_core/sweep_journal.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"

namespace am::bench {
namespace {

// Short windows keep each simulated point cheap; results stay nontrivial.
constexpr SimBackendOptions kFastSim{2'000, 10'000};

SweepEngine::BackendFactory test_sim_factory() {
  return [](std::uint64_t seed) -> std::unique_ptr<ExecutionBackend> {
    return std::make_unique<SimBackend>(sim::preset_by_name("test"), kFastSim,
                                        seed);
  };
}

std::vector<WorkloadConfig> sample_grid() {
  std::vector<WorkloadConfig> grid;
  for (std::uint32_t threads : {2u, 4u}) {
    for (Primitive prim : {Primitive::kFaa, Primitive::kCasLoop}) {
      WorkloadConfig w;
      w.mode = WorkloadMode::kHighContention;
      w.prim = prim;
      w.threads = threads;
      grid.push_back(w);
    }
  }
  WorkloadConfig zipf;
  zipf.mode = WorkloadMode::kZipf;
  zipf.threads = 4;
  zipf.zipf_lines = 32;
  zipf.zipf_s = 0.9;
  grid.push_back(zipf);
  return grid;
}

// Renders the current run log exactly as --json-out would, with wall-clock
// metadata pinned so byte comparison is meaningful.
std::string report_of_run_log() {
  ReportMeta meta;
  meta.bench = "sweep_test";
  meta.title = "golden";
  meta.backend = "sim:test";
  meta.machine = "test";
  meta.command = "sweep_test";
  meta.wall_time_s = 0.0;
  std::ostringstream os;
  write_run_report(os, meta, nullptr, run_log());
  return os.str();
}

std::string run_grid(unsigned jobs, const std::string& cache_dir,
                     std::size_t* executed = nullptr,
                     std::size_t* hits = nullptr) {
  clear_run_log();
  SweepOptions opts;
  opts.jobs = jobs;
  opts.cache_dir = cache_dir;
  opts.base_seed = 42;
  SweepEngine engine(test_sim_factory(), opts);
  for (const WorkloadConfig& w : sample_grid()) engine.submit(w);
  engine.drain();
  if (executed != nullptr) *executed = engine.executed_points();
  if (hits != nullptr) *hits = engine.cache_hits();
  return report_of_run_log();
}

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* tag) {
    path = std::filesystem::temp_directory_path() /
           (std::string("am_sweep_test_") + tag + "_" +
            std::to_string(static_cast<unsigned long>(::getpid())));
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(PointSeed, DeterministicDistinctAndNeverZero) {
  EXPECT_EQ(point_seed(1, 0), point_seed(1, 0));
  std::vector<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t s = point_seed(7, i);
    EXPECT_NE(s, 0u);
    seen.push_back(s);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
  EXPECT_NE(point_seed(1, 3), point_seed(2, 3));
}

// The golden test: the same grid at jobs=1 and jobs=8 must produce
// byte-identical run logs, hence byte-identical am-run-report documents.
TEST(SweepDeterminism, RunLogIdenticalAcrossJobs) {
  const std::string serial = run_grid(1, "");
  const std::string pooled = run_grid(8, "");
  EXPECT_EQ(serial, pooled);
  EXPECT_NE(serial.find("am-run-report/1"), std::string::npos);
  clear_run_log();
}

// Any pooled point is replayable in isolation: same preset, same workload,
// seed = point_seed(base, i) reproduces the pooled MeasuredRun bit-exactly.
TEST(SweepDeterminism, PerPointReplayReproducesPooledResult) {
  clear_run_log();
  SweepOptions opts;
  opts.jobs = 4;
  opts.base_seed = 42;
  SweepEngine engine(test_sim_factory(), opts);
  const std::vector<WorkloadConfig> grid = sample_grid();
  for (const WorkloadConfig& w : grid) engine.submit(w);
  engine.drain();

  for (std::size_t i = 0; i < grid.size(); ++i) {
    SimBackend replay(sim::preset_by_name("test"), kFastSim,
                      point_seed(42, i));
    std::vector<RecordedRun> local;
    replay.set_run_recorder(&local);
    const MeasuredRun rerun = replay.run(grid[i]);
    EXPECT_EQ(serialize_measured_run(rerun, "k"),
              serialize_measured_run(engine.result(i), "k"))
        << "point " << i << " not replayable";
  }
  clear_run_log();
}

TEST(SweepCache, SerializationRoundTripsBitExactly) {
  MeasuredRun run;
  run.backend = "sim";
  run.machine = "test \"quoted\" \xE2\x9C\x93";  // exercises JSON escaping
  run.duration_cycles = 10'000.0;
  run.freq_ghz = 0.1 + 0.2;  // not exactly 0.3: bit pattern must survive
  ThreadResult t;
  t.ops = 123;
  t.attempts = 456;
  t.mean_latency_cycles = std::numeric_limits<double>::denorm_min();
  t.p99_latency_cycles = -0.0;
  t.latency_tail_valid = true;
  t.ops_by_prim[2] = 99;
  run.threads.push_back(t);
  run.transfers[1] = 7;
  run.hot_lines.push_back(LineHotness{5, 10, 9, 3, 1.5, 4, 2.25, {1, 2, 3, 4}});
  run.epochs.push_back(EpochPoint{0.0, 5, 6, 0.5, 0.25, 2});
  run.epoch_cycles = 1000.0;
  run.energy_valid = true;
  run.energy_package_j = 1e-9;

  const std::string key = "deadbeefdeadbeef";
  const std::string text = serialize_measured_run(run, key);
  const auto parsed = parse_measured_run(text, key);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(serialize_measured_run(*parsed, key), text);
  // -0.0 and the denormal survive exactly (they would not through "%.12g").
  EXPECT_TRUE(std::signbit(parsed->threads[0].p99_latency_cycles));
  EXPECT_EQ(parsed->threads[0].mean_latency_cycles,
            std::numeric_limits<double>::denorm_min());

  // A document written under another key is rejected (stale/collided file).
  EXPECT_FALSE(parse_measured_run(text, "0000000000000000").has_value());
  // Corrupt documents are a miss, not a crash.
  EXPECT_FALSE(parse_measured_run(text.substr(0, text.size() / 2), key)
                   .has_value());
  EXPECT_FALSE(parse_measured_run("not json", key).has_value());
}

TEST(SweepCache, WarmRerunSimulatesNothingAndMatchesByteForByte) {
  TempDir dir("cache");
  std::size_t executed = 0, hits = 0;
  const std::string cold = run_grid(3, dir.path.string(), &executed, &hits);
  const std::size_t n = sample_grid().size();
  EXPECT_EQ(executed, n);
  EXPECT_EQ(hits, 0u);

  const std::string warm = run_grid(3, dir.path.string(), &executed, &hits);
  EXPECT_EQ(executed, 0u) << "warm cache rerun must simulate zero points";
  EXPECT_EQ(hits, n);
  EXPECT_EQ(cold, warm);

  // The cache key sees the seed: a different base seed must miss.
  clear_run_log();
  SweepOptions opts;
  opts.jobs = 2;
  opts.cache_dir = dir.path.string();
  opts.base_seed = 43;
  SweepEngine engine(test_sim_factory(), opts);
  for (const WorkloadConfig& w : sample_grid()) engine.submit(w);
  engine.drain();
  EXPECT_EQ(engine.executed_points(), n);
  clear_run_log();
}

// A backend that sleeps instead of computing: overlap is observable even on
// a single-core host, where CPU-bound points cannot speed up.
class SleepingBackend final : public ExecutionBackend {
 public:
  explicit SleepingBackend(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "fake"; }
  std::string machine_name() const override { return "fake"; }
  std::uint32_t max_threads() const override { return 64; }
  double freq_ghz() const override { return 1.0; }

 protected:
  MeasuredRun do_run(const WorkloadConfig& config) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    MeasuredRun r;
    r.backend = "fake";
    r.machine = "fake";
    r.duration_cycles = 1000.0;
    ThreadResult t;
    t.ops = seed_ ^ config.seed;  // marks which seed produced the result
    r.threads.push_back(t);
    return r;
  }

 private:
  std::uint64_t seed_;
};

TEST(SweepPool, PointsOverlapInTime) {
  clear_run_log();
  SweepOptions opts;
  opts.jobs = 8;
  SweepEngine engine(
      [](std::uint64_t seed) -> std::unique_ptr<ExecutionBackend> {
        return std::make_unique<SleepingBackend>(seed);
      },
      opts);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 8; ++i) engine.submit(WorkloadConfig{});
  engine.drain();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Serial would take 8 x 30ms = 240ms; overlapped, well under half that.
  EXPECT_LT(elapsed, std::chrono::milliseconds(120))
      << "8 sleeping points did not overlap";
  EXPECT_EQ(run_log().size(), 8u);
  clear_run_log();
}

// TSan target: many quick points and tasks racing through a narrow pool,
// with stats polled concurrently. Ordering must still equal submission.
TEST(SweepStress, MixedPointsAndTasksKeepSubmissionOrder) {
  clear_run_log();
  SweepOptions opts;
  opts.jobs = 4;
  opts.base_seed = 9;
  SweepEngine engine(
      [](std::uint64_t seed) -> std::unique_ptr<ExecutionBackend> {
        return std::make_unique<SleepingBackend>(seed);
      },
      opts);

  constexpr int kPoints = 48;
  std::atomic<int> task_runs{0};
  for (int i = 0; i < kPoints; ++i) {
    if (i % 5 == 0) {
      engine.submit_task(
          [&task_runs](std::uint64_t seed, std::vector<RecordedRun>& log) {
            SleepingBackend b(seed);
            b.set_run_recorder(&log);
            WorkloadConfig w;
            w.seed = 77;
            (void)b.run(w);
            task_runs.fetch_add(1, std::memory_order_relaxed);
          });
    } else {
      WorkloadConfig w;
      w.seed = static_cast<std::uint64_t>(i);
      engine.submit(w);
    }
    (void)engine.executed_points();  // concurrent stats reads under TSan
    (void)engine.cache_hits();
  }
  engine.drain();

  ASSERT_EQ(run_log().size(), static_cast<std::size_t>(kPoints));
  EXPECT_EQ(task_runs.load(), (kPoints + 4) / 5);
  for (int i = 0; i < kPoints; ++i) {
    const RecordedRun& rec = run_log()[static_cast<std::size_t>(i)];
    const std::uint64_t expect_seed =
        i % 5 == 0 ? 77u : static_cast<std::uint64_t>(i);
    EXPECT_EQ(rec.workload.seed, expect_seed) << "slot " << i;
    ASSERT_EQ(rec.run.threads.size(), 1u);
    EXPECT_EQ(rec.run.threads[0].ops,
              point_seed(9, static_cast<std::uint64_t>(i)) ^ expect_seed)
        << "slot " << i << " ran under the wrong point seed";
  }
  clear_run_log();
}

// --- failure isolation -------------------------------------------------------

// Magic workload seeds that make FlakyBackend fail a point in a chosen way;
// every other seed produces a normal (fast, deterministic) fake result.
constexpr std::uint64_t kSeedSimError = 1001;
constexpr std::uint64_t kSeedTimeout = 1002;

class FlakyBackend final : public ExecutionBackend {
 public:
  explicit FlakyBackend(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "flaky"; }
  std::string machine_name() const override { return "flaky"; }
  std::uint32_t max_threads() const override { return 64; }
  double freq_ghz() const override { return 1.0; }

 protected:
  MeasuredRun do_run(const WorkloadConfig& config) override {
    if (config.seed == kSeedSimError) {
      throw std::runtime_error("point exploded");
    }
    if (config.seed == kSeedTimeout) {
      throw sim::PointTimeout(sim::PointTimeout::Kind::kCycleBudget, 12'345,
                              99);
    }
    MeasuredRun r;
    r.backend = "flaky";
    r.machine = "flaky";
    r.duration_cycles = 1000.0;
    ThreadResult t;
    t.ops = seed_ ^ config.seed;
    r.threads.push_back(t);
    return r;
  }

 private:
  std::uint64_t seed_;
};

SweepEngine::BackendFactory flaky_factory() {
  return [](std::uint64_t seed) -> std::unique_ptr<ExecutionBackend> {
    return std::make_unique<FlakyBackend>(seed);
  };
}

// The core isolation contract: a sweep with failing points drains without
// throwing, surviving results stay intact in submission order, and the run
// log (hence the report) is byte-identical at any --jobs.
std::string run_flaky_grid(unsigned jobs, SweepEngine** out = nullptr,
                           std::vector<std::size_t>* indices = nullptr) {
  clear_run_log();
  SweepOptions opts;
  opts.jobs = jobs;
  opts.base_seed = 5;
  static std::unique_ptr<SweepEngine> engine;  // kept alive for the caller
  engine = std::make_unique<SweepEngine>(flaky_factory(), opts);
  constexpr int kPoints = 10;
  for (int i = 0; i < kPoints; ++i) {
    WorkloadConfig w;
    w.seed = i == 2 ? kSeedSimError
                    : i == 5 ? kSeedTimeout : static_cast<std::uint64_t>(i);
    const std::size_t idx = engine->submit(w);
    if (indices != nullptr) indices->push_back(idx);
  }
  engine->drain();
  if (out != nullptr) *out = engine.get();
  return report_of_run_log();
}

TEST(SweepFailureIsolation, FailedPointsDegradeSurvivorsIntact) {
  SweepEngine* engine = nullptr;
  const std::string report = run_flaky_grid(4, &engine);

  // 2 of 10 points failed; the other 8 flush in submission order.
  ASSERT_EQ(run_log().size(), 8u);
  std::vector<std::uint64_t> expect_seeds = {0, 1, 3, 4, 6, 7, 8, 9};
  for (std::size_t i = 0; i < run_log().size(); ++i) {
    EXPECT_EQ(run_log()[i].workload.seed, expect_seeds[i]) << "slot " << i;
  }

  EXPECT_EQ(engine->ok_points(), 8u);
  EXPECT_EQ(engine->outcome(2).status, PointStatus::kSimError);
  EXPECT_NE(engine->outcome(2).message.find("point exploded"),
            std::string::npos);
  EXPECT_EQ(engine->outcome(5).status, PointStatus::kTimeout);
  EXPECT_NE(engine->outcome(5).message.find("cycle budget"),
            std::string::npos);
  EXPECT_EQ(engine->result_or_null(2), nullptr);
  EXPECT_NE(engine->result_or_null(3), nullptr);

  const auto failed = engine->failed_points();
  ASSERT_EQ(failed.size(), 2u);
  EXPECT_EQ(failed[0].index, 2u);
  EXPECT_EQ(failed[0].status, PointStatus::kSimError);
  EXPECT_EQ(failed[1].index, 5u);
  EXPECT_EQ(failed[1].status, PointStatus::kTimeout);
  EXPECT_EQ(failed[0].seed, point_seed(5, 2));

  // result() on a failed point explains itself and names the replay flag.
  try {
    (void)engine->result(5);
    FAIL() << "result(5) on a timed-out point must throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("timeout"), std::string::npos) << what;
    EXPECT_NE(what.find("--replay-point=5"), std::string::npos) << what;
  }
  clear_run_log();
}

TEST(SweepFailureIsolation, ReportBytesIdenticalAcrossJobsWithFailures) {
  const std::string serial = run_flaky_grid(1);
  const std::string pooled = run_flaky_grid(8);
  EXPECT_EQ(serial, pooled);
  clear_run_log();
}

TEST(SweepFailureIsolation, FailedTaskIsIsolatedToo) {
  clear_run_log();
  SweepOptions opts;
  opts.jobs = 2;
  SweepEngine engine(flaky_factory(), opts);
  engine.submit(WorkloadConfig{});
  engine.submit_task([](std::uint64_t, std::vector<RecordedRun>&) {
    throw std::runtime_error("task exploded");
  });
  engine.submit(WorkloadConfig{});
  engine.drain();  // must not throw
  EXPECT_EQ(run_log().size(), 2u) << "both healthy points flush";
  const auto failed = engine.failed_points();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0].index, 1u);
  EXPECT_TRUE(failed[0].is_task);
  EXPECT_EQ(failed[0].status, PointStatus::kSimError);
  clear_run_log();
}

// --- cancellation ------------------------------------------------------------

TEST(SweepCancel, PreCancelledSweepDrainsWithAllPointsCancelled) {
  clear_run_log();
  SweepEngine::request_cancel();
  SweepOptions opts;
  opts.jobs = 2;
  SweepEngine engine(flaky_factory(), opts);
  for (int i = 0; i < 4; ++i) engine.submit(WorkloadConfig{});
  engine.drain();  // completes despite nothing running
  SweepEngine::clear_cancel();

  EXPECT_EQ(run_log().size(), 0u);
  EXPECT_EQ(engine.ok_points(), 0u);
  const auto failed = engine.failed_points();
  ASSERT_EQ(failed.size(), 4u);
  for (const auto& f : failed) {
    EXPECT_EQ(f.status, PointStatus::kCancelled);
  }
  clear_run_log();
}

// --- crash-recovery journal --------------------------------------------------

MeasuredRun tiny_run(std::uint64_t mark) {
  MeasuredRun r;
  r.backend = "sim";
  r.machine = "test";
  r.duration_cycles = 1000.0;
  ThreadResult t;
  t.ops = mark;
  r.threads.push_back(t);
  return r;
}

TEST(SweepJournalFile, TornTailToleratedAndCompacted) {
  TempDir dir("journal");
  std::filesystem::create_directories(dir.path);
  const std::string path = (dir.path / "sweep.journal").string();
  {
    sweep::SweepJournal j;
    ASSERT_TRUE(j.open(path));
    EXPECT_EQ(j.loaded_entries(), 0u);
    ASSERT_TRUE(j.append("k1", tiny_run(1)));
    ASSERT_TRUE(j.append("k2", tiny_run(2)));
  }
  // Crash mid-append: a torn, newline-less JSON stump at the tail.
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"v\":\"am-sweep-cache/1\",\"key\":\"k3\",\"backend";
  }
  {
    sweep::SweepJournal j;
    ASSERT_TRUE(j.open(path));
    EXPECT_EQ(j.loaded_entries(), 2u) << "torn tail must not kill the prefix";
    const auto r1 = j.lookup("k1");
    ASSERT_TRUE(r1.has_value());
    EXPECT_EQ(r1->threads.at(0).ops, 1u);
    EXPECT_FALSE(j.lookup("k3").has_value());
    // The load compacted the torn tail away and the file stays appendable.
    ASSERT_TRUE(j.append("k3", tiny_run(3)));
  }
  {
    sweep::SweepJournal j;
    ASSERT_TRUE(j.open(path));
    EXPECT_EQ(j.loaded_entries(), 3u);
  }
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, sweep::kJournalVersion);
}

TEST(SweepJournalFile, ForeignFileSetAsideNotDestroyed) {
  TempDir dir("journal_foreign");
  std::filesystem::create_directories(dir.path);
  const std::string path = (dir.path / "notes.txt").string();
  {
    std::ofstream out(path);
    out << "user data, not a journal\n";
  }
  sweep::SweepJournal j;
  ASSERT_TRUE(j.open(path));
  EXPECT_EQ(j.loaded_entries(), 0u);
  std::ifstream aside(path + ".corrupt");
  std::string line;
  std::getline(aside, line);
  EXPECT_EQ(line, "user data, not a journal")
      << "a non-journal file must be preserved as <path>.corrupt";
}

TEST(SweepJournalFile, RerunSkipsJournaledPointsWithoutCache) {
  TempDir dir("journal_rerun");
  std::filesystem::create_directories(dir.path);
  const std::string path = (dir.path / "sweep.journal").string();
  const std::size_t n = sample_grid().size();

  auto run_with_journal = [&](std::size_t* executed, std::size_t* jhits) {
    clear_run_log();
    SweepOptions opts;
    opts.jobs = 3;
    opts.base_seed = 42;
    opts.journal_path = path;  // note: no cache_dir — journal alone
    SweepEngine engine(test_sim_factory(), opts);
    for (const WorkloadConfig& w : sample_grid()) engine.submit(w);
    engine.drain();
    *executed = engine.executed_points();
    *jhits = engine.journal_hits();
    return report_of_run_log();
  };

  std::size_t executed = 0, jhits = 0;
  const std::string first = run_with_journal(&executed, &jhits);
  EXPECT_EQ(executed, n);
  EXPECT_EQ(jhits, 0u);

  const std::string second = run_with_journal(&executed, &jhits);
  EXPECT_EQ(executed, 0u) << "journaled rerun must simulate zero points";
  EXPECT_EQ(jhits, n);
  EXPECT_EQ(first, second) << "journal replay must be bit-exact";
  clear_run_log();
}

// --- cache self-healing ------------------------------------------------------

TEST(SweepCacheHealing, CorruptCacheFileQuarantinedAndRecomputed) {
  TempDir dir("heal");
  const std::string cache = dir.path.string();
  std::size_t executed = 0, hits = 0;
  const std::string cold = run_grid(2, cache, &executed, &hits);
  const std::size_t n = sample_grid().size();
  ASSERT_EQ(executed, n);

  // Corrupt one cache file in place.
  std::string victim;
  for (const auto& e : std::filesystem::directory_iterator(dir.path)) {
    if (e.path().extension() == ".json") {
      victim = e.path().string();
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  {
    std::ofstream out(victim, std::ios::trunc);
    out << "garbage bytes, not a cached run";
  }

  clear_run_log();
  SweepOptions opts;
  opts.jobs = 2;
  opts.cache_dir = cache;
  opts.base_seed = 42;
  SweepEngine engine(test_sim_factory(), opts);
  for (const WorkloadConfig& w : sample_grid()) engine.submit(w);
  engine.drain();
  EXPECT_EQ(engine.cache_hits(), n - 1);
  EXPECT_EQ(engine.executed_points(), 1u) << "only the corrupt point reruns";
  EXPECT_EQ(engine.quarantined_files(), 1u);
  EXPECT_EQ(report_of_run_log(), cold) << "healed rerun stays byte-identical";

  // The bad file moved into <cache>/quarantine/ for postmortem.
  const auto qdir = dir.path / "quarantine";
  ASSERT_TRUE(std::filesystem::is_directory(qdir));
  EXPECT_EQ(std::distance(std::filesystem::directory_iterator(qdir),
                          std::filesystem::directory_iterator()),
            1);
  clear_run_log();
}

TEST(SweepCacheHealing, WriteFailuresDegradeAndAreCounted) {
  TempDir dir("enospc");
  sweep::IoFaults faults;
  faults.write_enospc = -1;  // every cache write fails, every retry
  sweep::set_io_faults(&faults);
  std::size_t executed = 0, hits = 0;
  (void)run_grid(2, dir.path.string(), &executed, &hits);
  sweep::set_io_faults(nullptr);
  const std::size_t n = sample_grid().size();
  EXPECT_EQ(executed, n) << "results must not be lost to cache I/O errors";

  // Nothing was cached, so a clean rerun re-executes everything.
  clear_run_log();
  SweepOptions opts;
  opts.jobs = 2;
  opts.cache_dir = dir.path.string();
  opts.base_seed = 42;
  SweepEngine engine(test_sim_factory(), opts);
  for (const WorkloadConfig& w : sample_grid()) engine.submit(w);
  engine.drain();
  EXPECT_EQ(engine.cache_hits(), 0u);
  EXPECT_EQ(engine.executed_points(), n);
  clear_run_log();
}

TEST(SweepCacheHealing, TransientWriteFaultIsRetriedAway) {
  TempDir dir("transient");
  sweep::IoFaults faults;
  faults.write_enospc = 1;  // exactly one injected failure, then healthy
  sweep::set_io_faults(&faults);
  std::size_t executed = 0, hits = 0;
  (void)run_grid(1, dir.path.string(), &executed, &hits);
  sweep::set_io_faults(nullptr);
  const std::size_t n = sample_grid().size();
  EXPECT_EQ(executed, n);

  // The retry absorbed the fault: the warm rerun hits every point.
  (void)run_grid(1, dir.path.string(), &executed, &hits);
  EXPECT_EQ(executed, 0u);
  EXPECT_EQ(hits, n);
  clear_run_log();
}

TEST(SweepCacheHealing, EscalatedReadFaultFailsPointsAsCacheError) {
  TempDir dir("escalate");
  std::size_t executed = 0, hits = 0;
  (void)run_grid(1, dir.path.string(), &executed, &hits);  // warm the cache
  const std::size_t n = sample_grid().size();
  ASSERT_EQ(executed, n);

  sweep::IoFaults faults;
  faults.read_eio = -1;
  faults.escalate_read = true;
  sweep::set_io_faults(&faults);
  clear_run_log();
  SweepOptions opts;
  opts.jobs = 2;
  opts.cache_dir = dir.path.string();
  opts.base_seed = 42;
  SweepEngine engine(test_sim_factory(), opts);
  for (const WorkloadConfig& w : sample_grid()) engine.submit(w);
  engine.drain();
  sweep::set_io_faults(nullptr);

  EXPECT_EQ(engine.ok_points(), 0u);
  EXPECT_GE(engine.cache_io_errors(), n);
  const auto failed = engine.failed_points();
  ASSERT_EQ(failed.size(), n);
  for (const auto& f : failed) {
    EXPECT_EQ(f.status, PointStatus::kCacheError);
    EXPECT_NE(f.message.find("cache read failed"), std::string::npos);
  }
  clear_run_log();
}

// --- replay ------------------------------------------------------------------

TEST(SweepReplay, ReplayPointRunsExactlyOneBypassingCache) {
  TempDir dir("replay");
  std::size_t executed = 0, hits = 0;
  (void)run_grid(2, dir.path.string(), &executed, &hits);  // warm the cache
  clear_run_log();

  SweepOptions opts;
  opts.jobs = 1;
  opts.cache_dir = dir.path.string();
  opts.base_seed = 42;
  opts.replay_point = 2;
  SweepEngine engine(test_sim_factory(), opts);
  const auto grid = sample_grid();
  for (const WorkloadConfig& w : grid) engine.submit(w);
  engine.drain();

  EXPECT_EQ(engine.executed_points(), 1u)
      << "replay must re-execute despite a warm cache";
  EXPECT_EQ(engine.cache_hits(), 0u);
  EXPECT_EQ(engine.outcome(0).status, PointStatus::kSkipped);
  ASSERT_NE(engine.result_or_null(2), nullptr);

  // The replayed result equals the original pooled one bit-exactly.
  SimBackend reference(sim::preset_by_name("test"), kFastSim, point_seed(42, 2));
  std::vector<RecordedRun> local;
  reference.set_run_recorder(&local);
  const MeasuredRun expect = reference.run(grid[2]);
  EXPECT_EQ(serialize_measured_run(*engine.result_or_null(2), "k"),
            serialize_measured_run(expect, "k"));
  clear_run_log();
}

}  // namespace
}  // namespace am::bench
