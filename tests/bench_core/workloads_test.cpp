// The extended workload modes (sharded, private-walk) and latency
// percentiles through the backend seam.
#include <gtest/gtest.h>

#include "bench_core/sim_backend.hpp"
#include "sim/config.hpp"

namespace am::bench {
namespace {

TEST(ShardedWorkload, OneShardEqualsHighContention) {
  SimBackend backend(sim::test_machine(8));
  WorkloadConfig shared;
  shared.mode = WorkloadMode::kHighContention;
  shared.prim = Primitive::kFaa;
  shared.threads = 8;
  WorkloadConfig sharded = shared;
  sharded.mode = WorkloadMode::kSharded;
  sharded.shards = 1;
  const auto a = backend.run(shared);
  const auto b = backend.run(sharded);
  EXPECT_NEAR(a.throughput_ops_per_kcycle(), b.throughput_ops_per_kcycle(),
              a.throughput_ops_per_kcycle() * 0.02);
}

TEST(ShardedWorkload, PerThreadShardsEqualPrivateLines) {
  SimBackend backend(sim::test_machine(8));
  WorkloadConfig priv;
  priv.mode = WorkloadMode::kLowContention;
  priv.prim = Primitive::kFaa;
  priv.threads = 8;
  WorkloadConfig sharded = priv;
  sharded.mode = WorkloadMode::kSharded;
  sharded.shards = 8;
  const auto a = backend.run(priv);
  const auto b = backend.run(sharded);
  EXPECT_NEAR(a.throughput_ops_per_kcycle(), b.throughput_ops_per_kcycle(),
              a.throughput_ops_per_kcycle() * 0.02);
}

TEST(ShardedWorkload, ThroughputScalesWithShards) {
  SimBackend backend(sim::test_machine(8));
  double prev = 0.0;
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    WorkloadConfig w;
    w.mode = WorkloadMode::kSharded;
    w.prim = Primitive::kFaa;
    w.threads = 8;
    w.shards = shards;
    const double x = backend.run(w).throughput_ops_per_kcycle();
    EXPECT_GT(x, prev) << "shards=" << shards;
    prev = x;
  }
}

TEST(PrivateWalk, RunsAndScalesWithThreads) {
  SimBackend backend(sim::test_machine(4));
  WorkloadConfig w;
  w.mode = WorkloadMode::kPrivateWalk;
  w.prim = Primitive::kFaa;
  w.lines_per_thread = 4;
  w.threads = 1;
  const auto one = backend.run(w);
  w.threads = 4;
  const auto four = backend.run(w);
  EXPECT_NEAR(four.throughput_ops_per_kcycle(),
              4.0 * one.throughput_ops_per_kcycle(),
              one.throughput_ops_per_kcycle() * 0.1);
}

TEST(LatencyPercentiles, P99AtLeastMeanUnderContention) {
  SimBackend backend(sim::xeon_e5_2x18());
  WorkloadConfig w;
  w.mode = WorkloadMode::kHighContention;
  w.prim = Primitive::kFaa;
  w.threads = 16;
  const auto r = backend.run(w);
  for (const auto& t : r.threads) {
    if (t.ops == 0) continue;
    EXPECT_GT(t.p99_latency_cycles, 0.0);
    // Log-bucketed percentile: allow the bucket's relative width.
    EXPECT_GE(t.p99_latency_cycles, t.mean_latency_cycles * 0.6);
  }
}

TEST(WorkJitter, PreservesMeanRate) {
  SimBackend backend(sim::test_machine(4));
  WorkloadConfig w;
  w.mode = WorkloadMode::kHighContention;
  w.prim = Primitive::kFaa;
  w.threads = 1;
  w.work = 2000;
  const auto plain = backend.run(w);
  w.work_jitter = 0.5;
  const auto jittered = backend.run(w);
  // Uniform jitter keeps the mean work identical: ~same throughput.
  EXPECT_NEAR(jittered.throughput_ops_per_kcycle(),
              plain.throughput_ops_per_kcycle(),
              plain.throughput_ops_per_kcycle() * 0.05);
}

TEST(ModeNames, NewModesPrint) {
  EXPECT_STREQ(to_string(WorkloadMode::kSharded), "sharded");
  EXPECT_STREQ(to_string(WorkloadMode::kPrivateWalk), "private-walk");
}

}  // namespace
}  // namespace am::bench
