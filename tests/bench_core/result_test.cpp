#include <gtest/gtest.h>

#include "bench_core/result.hpp"
#include "bench_core/workload.hpp"

namespace am::bench {
namespace {

MeasuredRun sample_run() {
  MeasuredRun r;
  r.duration_cycles = 1000.0;
  r.freq_ghz = 2.0;
  ThreadResult a;
  a.ops = 100;
  a.successes = 80;
  a.failures = 20;
  a.attempts = 150;
  a.mean_latency_cycles = 50.0;
  ThreadResult b;
  b.ops = 50;
  b.successes = 50;
  b.attempts = 50;
  b.mean_latency_cycles = 100.0;
  r.threads = {a, b};
  return r;
}

TEST(MeasuredRun, Totals) {
  const MeasuredRun r = sample_run();
  EXPECT_EQ(r.total_ops(), 150u);
  EXPECT_EQ(r.total_successes(), 130u);
  EXPECT_EQ(r.total_attempts(), 200u);
}

TEST(MeasuredRun, Throughput) {
  const MeasuredRun r = sample_run();
  EXPECT_DOUBLE_EQ(r.throughput_ops_per_kcycle(), 150.0);
  // 0.15 ops/cycle * 2e9 cycles/s = 300 Mops.
  EXPECT_DOUBLE_EQ(r.throughput_mops(), 300.0);
}

TEST(MeasuredRun, OpsWeightedLatency) {
  const MeasuredRun r = sample_run();
  EXPECT_NEAR(r.mean_latency_cycles(), (100 * 50.0 + 50 * 100.0) / 150.0,
              1e-12);
}

TEST(MeasuredRun, Ratios) {
  const MeasuredRun r = sample_run();
  EXPECT_NEAR(r.success_rate(), 130.0 / 150.0, 1e-12);
  EXPECT_NEAR(r.attempts_per_op(), 200.0 / 150.0, 1e-12);
}

TEST(MeasuredRun, Fairness) {
  const MeasuredRun r = sample_run();
  EXPECT_NEAR(r.min_max_ratio(), 0.5, 1e-12);
  EXPECT_LT(r.jain_fairness(), 1.0);
  EXPECT_GT(r.jain_fairness(), 0.5);
}

TEST(MeasuredRun, EnergyPerOp) {
  MeasuredRun r = sample_run();
  EXPECT_DOUBLE_EQ(r.energy_per_op_nj(), 0.0);  // invalid energy
  r.energy_valid = true;
  r.energy_package_j = 1.5e-6;
  r.energy_dram_j = 0.0;
  EXPECT_NEAR(r.energy_per_op_nj(), 1500.0 / 150.0, 1e-9);
}

TEST(MeasuredRun, EmptyRunDefaults) {
  MeasuredRun r;
  EXPECT_EQ(r.total_ops(), 0u);
  EXPECT_DOUBLE_EQ(r.throughput_ops_per_kcycle(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_latency_cycles(), 0.0);
  EXPECT_DOUBLE_EQ(r.success_rate(), 1.0);
  EXPECT_DOUBLE_EQ(r.attempts_per_op(), 1.0);
}

TEST(Workload, Describe) {
  WorkloadConfig w;
  w.mode = WorkloadMode::kZipf;
  w.prim = Primitive::kCas;
  w.threads = 4;
  const std::string d = w.describe();
  EXPECT_NE(d.find("CAS"), std::string::npos);
  EXPECT_NE(d.find("zipf"), std::string::npos);
  EXPECT_NE(d.find("threads=4"), std::string::npos);
}

}  // namespace
}  // namespace am::bench
