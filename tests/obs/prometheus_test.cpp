// Exposition golden test and parser round-trip: the scrape text is a wire
// format, so its exact shape is pinned here — HELP/TYPE headers once per
// family, label escaping, cumulative histogram buckets with elided empty
// tail, and a parser that survives garbage lines.

#include "obs/prometheus.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace m = am::obs::metrics;

TEST(RenderPrometheus, GoldenOutput) {
  m::Registry reg;
  reg.counter("am_requests_total", "requests by kind", {{"kind", "ping"}})
      .inc(3);
  reg.counter("am_requests_total", "requests by kind", {{"kind", "stats"}})
      .inc(1);
  reg.gauge("am_uptime_seconds", "seconds since start").set(12.5);
  m::Histogram& h =
      reg.histogram("am_latency_us", "request latency, microseconds");
  h.observe(0);
  h.observe(3);
  h.observe(3);
  h.observe(1000);

  const std::string expected =
      "# HELP am_latency_us request latency, microseconds\n"
      "# TYPE am_latency_us histogram\n"
      "am_latency_us_bucket{le=\"0\"} 1\n"
      "am_latency_us_bucket{le=\"3\"} 3\n"
      "am_latency_us_bucket{le=\"1023\"} 4\n"
      "am_latency_us_bucket{le=\"+Inf\"} 4\n"
      "am_latency_us_sum 1006\n"
      "am_latency_us_count 4\n"
      "# HELP am_requests_total requests by kind\n"
      "# TYPE am_requests_total counter\n"
      "am_requests_total{kind=\"ping\"} 3\n"
      "am_requests_total{kind=\"stats\"} 1\n"
      "# HELP am_uptime_seconds seconds since start\n"
      "# TYPE am_uptime_seconds gauge\n"
      "am_uptime_seconds 12.5\n";
  EXPECT_EQ(m::render_prometheus(reg), expected);
}

TEST(RenderPrometheus, ParseRoundTrip) {
  m::Registry reg;
  reg.counter("reqs_total", "h", {{"kind", "ping"}}).inc(42);
  reg.gauge("temp", "h").set(-3.25);
  m::Histogram& h = reg.histogram("lat", "h");
  for (int i = 0; i < 10; ++i) h.observe(100);

  const auto samples = m::parse_prometheus_text(m::render_prometheus(reg));
  EXPECT_EQ(m::find_sample(samples, "reqs_total", {{"kind", "ping"}}),
            42.0);
  EXPECT_EQ(m::find_sample(samples, "temp"), -3.25);
  EXPECT_EQ(m::find_sample(samples, "lat_count"), 10.0);
  EXPECT_EQ(m::find_sample(samples, "lat_sum"), 1000.0);
  EXPECT_EQ(m::find_sample(samples, "lat_bucket", {{"le", "127"}}), 10.0);
  const auto inf = m::find_sample(samples, "lat_bucket", {{"le", "+Inf"}});
  ASSERT_TRUE(inf.has_value());
  EXPECT_EQ(*inf, 10.0);
  EXPECT_FALSE(m::find_sample(samples, "absent_metric").has_value());
  EXPECT_FALSE(
      m::find_sample(samples, "reqs_total", {{"kind", "absent"}}).has_value());
}

TEST(PromWriter, EscapesLabelValues) {
  EXPECT_EQ(m::PromWriter::escape_label("plain"), "plain");
  EXPECT_EQ(m::PromWriter::escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(m::PromWriter::escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(m::PromWriter::escape_label("a\nb"), "a\\nb");

  std::string out;
  m::PromWriter w(out);
  w.family("f", "help", m::Type::kGauge);
  w.sample("f", {{"path", "a\"b\\c"}}, 1.0);
  EXPECT_NE(out.find("f{path=\"a\\\"b\\\\c\"} 1\n"), std::string::npos);

  // And the parser undoes it.
  const auto samples = m::parse_prometheus_text(out);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].labels.at("path"), "a\"b\\c");
}

TEST(PromWriter, FamilyHeaderOnlyOnce) {
  std::string out;
  m::PromWriter w(out);
  w.family("f_total", "help", m::Type::kCounter);
  w.sample("f_total", {{"k", "a"}}, std::uint64_t{1});
  w.family("f_total", "help", m::Type::kCounter);  // continuation: no header
  w.sample("f_total", {{"k", "b"}}, std::uint64_t{2});
  std::size_t helps = 0;
  for (std::size_t p = out.find("# HELP"); p != std::string::npos;
       p = out.find("# HELP", p + 1)) {
    ++helps;
  }
  EXPECT_EQ(helps, 1u);
}

TEST(ParsePrometheusText, SurvivesGarbage) {
  const auto samples = m::parse_prometheus_text(
      "# comment\n"
      "\n"
      "ok_metric 1\n"
      "{no_name} 2\n"
      "unclosed_label{k=\"v 3\n"
      "no_value{k=\"v\"}\n"
      "not_a_number x\n"
      "special NaN\n"
      "inf_metric +Inf\n");
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "ok_metric");
  EXPECT_EQ(samples[0].value, 1.0);
  EXPECT_EQ(samples[1].name, "special");
  EXPECT_TRUE(std::isnan(samples[1].value));
  EXPECT_EQ(samples[2].name, "inf_metric");
  EXPECT_TRUE(std::isinf(samples[2].value));
}
