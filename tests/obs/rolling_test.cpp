// RollingWindows under a simulated clock: window deltas are exact
// arithmetic over snapshots, so stepping now_ms by hand lets the tests
// assert rates and percentiles to the digit.

#include "obs/rolling.hpp"

#include <gtest/gtest.h>

namespace m = am::obs::metrics;

TEST(RollingWindows, NoSnapshotYieldsNullopt) {
  m::Registry reg;
  m::Counter& c = reg.counter("reqs_total", "test");
  m::RollingWindows windows(reg, 8);
  EXPECT_FALSE(windows.delta(c, 10.0, 1000).has_value());
}

TEST(RollingWindows, ExactRateOverSimulatedClock) {
  m::Registry reg;
  m::Counter& c = reg.counter("reqs_total", "test");
  m::RollingWindows windows(reg, 64);

  windows.sample(0);  // baseline at t=0, value 0
  c.inc(100);
  windows.sample(1000);  // t=1s, value 100
  c.inc(300);
  windows.sample(2000);  // t=2s, value 400

  // 1s window at t=2s: baseline is the t=1s snapshot -> 300 reqs / 1s.
  auto d1 = windows.delta(c, 1.0, 2000);
  ASSERT_TRUE(d1.has_value());
  EXPECT_EQ(d1->count, 300u);
  EXPECT_DOUBLE_EQ(d1->seconds, 1.0);
  EXPECT_DOUBLE_EQ(d1->rate(), 300.0);

  // 2s window at t=2s: baseline is t=0 -> 400 reqs / 2s.
  auto d2 = windows.delta(c, 2.0, 2000);
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->count, 400u);
  EXPECT_DOUBLE_EQ(d2->rate(), 200.0);
}

TEST(RollingWindows, WarmupWindowIsHonestAboutPartialSpan) {
  m::Registry reg;
  m::Counter& c = reg.counter("reqs_total", "test");
  m::RollingWindows windows(reg, 64);
  windows.sample(0);
  c.inc(50);
  // A 60s window only 5s in falls back to the oldest snapshot and reports
  // the 5s it actually covers — not a rate diluted over 60s.
  auto d = windows.delta(c, 60.0, 5000);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->count, 50u);
  EXPECT_DOUBLE_EQ(d->seconds, 5.0);
  EXPECT_DOUBLE_EQ(d->rate(), 10.0);
}

TEST(RollingWindows, RingEvictsOldestBeyondCapacity) {
  m::Registry reg;
  m::Counter& c = reg.counter("reqs_total", "test");
  m::RollingWindows windows(reg, 4);
  for (std::uint64_t t = 0; t < 10; ++t) {
    windows.sample(t * 1000);
    c.inc(10);
  }
  EXPECT_EQ(windows.samples(), 4u);
  // Oldest surviving snapshot is t=6s (value 60); a huge window clamps to
  // it: delta = 100 - 60 over 3s.
  auto d = windows.delta(c, 1000.0, 9000);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->count, 40u);
  EXPECT_DOUBLE_EQ(d->seconds, 3.0);
}

TEST(RollingWindows, OutOfOrderSampleIgnored) {
  m::Registry reg;
  m::Counter& c = reg.counter("reqs_total", "test");
  m::RollingWindows windows(reg, 8);
  windows.sample(1000);
  windows.sample(500);  // stale stamp: dropped
  EXPECT_EQ(windows.samples(), 1u);
  c.inc(7);
  auto d = windows.delta(c, 10.0, 2000);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->count, 7u);
}

TEST(RollingWindows, HistogramWindowSeesOnlyRecentObservations) {
  m::Registry reg;
  m::Histogram& h = reg.histogram("lat_us", "test");
  m::RollingWindows windows(reg, 64);

  windows.sample(0);  // empty baseline
  // Epoch 1: slow requests (~4000us).
  for (int i = 0; i < 100; ++i) h.observe(4000);
  windows.sample(1000);
  // Epoch 2: fast requests (~10us).
  for (int i = 0; i < 100; ++i) h.observe(10);

  // A 1s window at t=2s subtracts the t=1s snapshot: only the fast batch.
  auto w = windows.histogram_delta(h, 1.0, 2000);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->count, 100u);
  EXPECT_EQ(w->sum, 100u * 10u);
  EXPECT_LT(w->percentile(99.0), 100.0);
  EXPECT_DOUBLE_EQ(w->mean(), 10.0);

  // The lifetime distribution puts p90 in the slow bucket; prove the window
  // view differs from it.
  auto lifetime = windows.histogram_delta(h, 1000.0, 2000);
  ASSERT_TRUE(lifetime.has_value());
  EXPECT_EQ(lifetime->count, 200u);
  EXPECT_GT(lifetime->percentile(90.0), 1000.0);
}

TEST(RollingWindows, LateRegisteredInstrumentJoinsNextSample) {
  m::Registry reg;
  m::RollingWindows windows(reg, 8);
  windows.sample(0);
  m::Counter& late = reg.counter("late_total", "test");
  late.inc(5);
  // Not in the t=0 snapshot: treated as starting from zero there, so the
  // full-window fallback still reports the live value.
  auto d0 = windows.delta(late, 10.0, 500);
  ASSERT_TRUE(d0.has_value());
  EXPECT_EQ(d0->count, 5u);
  windows.sample(1000);
  late.inc(2);
  auto d1 = windows.delta(late, 0.5, 1500);
  ASSERT_TRUE(d1.has_value());
  EXPECT_EQ(d1->count, 2u);
}
