// Registry and instrument semantics: exact totals under concurrent
// hammering (the TSan gate for the sharded fetch-add design), log2 bucket
// math, interning rules, and the process-wide enable switch.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

namespace m = am::obs::metrics;

TEST(Counter, SingleThreadExact) {
  m::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

// The load-bearing concurrency test: N threads hammer one counter and one
// histogram; the sharded relaxed fetch-adds must neither lose updates nor
// trip TSan. Totals are exact because increments are atomic per shard and
// value() sums all shards after join.
TEST(Counter, ConcurrentHammerExactTotal) {
  m::Registry reg;
  m::Counter& c = reg.counter("hammer_total", "test");
  m::Histogram& h = reg.histogram("hammer_lat", "test");
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(t);  // thread id as the observed value: known bucket mix
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  // sum = kPerThread * (0 + 1 + ... + kThreads-1)
  EXPECT_EQ(h.sum(), kPerThread * (kThreads * (kThreads - 1) / 2));
}

TEST(Gauge, SetAndAdd) {
  m::Gauge g;
  g.set(2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Histogram, BucketIndexIsBitWidth) {
  EXPECT_EQ(m::Histogram::bucket_index(0), 0u);
  EXPECT_EQ(m::Histogram::bucket_index(1), 1u);
  EXPECT_EQ(m::Histogram::bucket_index(2), 2u);
  EXPECT_EQ(m::Histogram::bucket_index(3), 2u);
  EXPECT_EQ(m::Histogram::bucket_index(4), 3u);
  EXPECT_EQ(m::Histogram::bucket_index(1023), 10u);
  EXPECT_EQ(m::Histogram::bucket_index(1024), 11u);
  // Saturates into the last (+Inf) bucket.
  EXPECT_EQ(m::Histogram::bucket_index(~std::uint64_t{0}),
            m::Histogram::kBuckets - 1);
}

TEST(Histogram, BucketBoundIsInclusiveUpperEdge) {
  EXPECT_EQ(m::Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(m::Histogram::bucket_bound(1), 1u);
  EXPECT_EQ(m::Histogram::bucket_bound(2), 3u);
  EXPECT_EQ(m::Histogram::bucket_bound(10), 1023u);
  EXPECT_EQ(m::Histogram::bucket_bound(m::Histogram::kBuckets - 1),
            ~std::uint64_t{0});
}

TEST(Histogram, CountsLandInTheRightBuckets) {
  m::Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(1000);
  const auto buckets = h.bucket_counts();
  EXPECT_EQ(buckets[0], 1u);   // v == 0
  EXPECT_EQ(buckets[1], 1u);   // v == 1
  EXPECT_EQ(buckets[2], 2u);   // v in [2,4)
  EXPECT_EQ(buckets[10], 1u);  // 1000 in [512,1024)
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1006u);
}

TEST(BucketPercentile, InterpolatesAndClamps) {
  std::array<std::uint64_t, m::Histogram::kBuckets> buckets{};
  EXPECT_DOUBLE_EQ(m::bucket_percentile(buckets, 50.0), 0.0);  // empty
  buckets[11] = 100;  // all mass in [1024, 2048)
  const double p50 = m::bucket_percentile(buckets, 50.0);
  EXPECT_GE(p50, 1024.0);
  EXPECT_LE(p50, 2047.0);
  const double p1 = m::bucket_percentile(buckets, 1.0);
  const double p99 = m::bucket_percentile(buckets, 99.0);
  EXPECT_LE(p1, p50);
  EXPECT_LE(p50, p99);
}

TEST(Registry, InternsByNameAndLabels) {
  m::Registry reg;
  m::Counter& a = reg.counter("reqs_total", "help", {{"kind", "ping"}});
  m::Counter& b = reg.counter("reqs_total", "help", {{"kind", "ping"}});
  m::Counter& c = reg.counter("reqs_total", "help", {{"kind", "stats"}});
  EXPECT_EQ(&a, &b);  // same (name, labels) -> same instrument
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, TypeConflictThrows) {
  m::Registry reg;
  reg.counter("x_total", "help");
  EXPECT_THROW(reg.gauge("x_total", "help"), std::logic_error);
  EXPECT_THROW(reg.histogram("x_total", "help"), std::logic_error);
}

TEST(Registry, ExpositionOrderIsSorted) {
  m::Registry reg;
  reg.counter("zebra_total", "z");
  reg.counter("alpha_total", "a");
  reg.gauge("middle", "m");
  const auto instruments = reg.instruments();
  ASSERT_EQ(instruments.size(), 3u);
  EXPECT_EQ(instruments[0]->name, "alpha_total");
  EXPECT_EQ(instruments[1]->name, "middle");
  EXPECT_EQ(instruments[2]->name, "zebra_total");
}

TEST(Enabled, GlobalSwitchRoundTrips) {
  EXPECT_TRUE(m::enabled());  // default on
  m::set_enabled(false);
  EXPECT_FALSE(m::enabled());
  m::set_enabled(true);
  EXPECT_TRUE(m::enabled());
}

TEST(DefaultRegistry, IsProcessWideSingleton) {
  EXPECT_EQ(&m::default_registry(), &m::default_registry());
}
