// Energy accounting: structural properties the paper's energy figures rely
// on (energy per op rises with contention; spin energy dominates waiting).
#include <gtest/gtest.h>

#include "sim/config.hpp"
#include "sim/energy_model.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"

namespace am::sim {
namespace {

TEST(EnergyAccounting, UnitConversions) {
  EnergyParams p;
  p.freq_ghz = 1.0;  // 1 cycle == 1 ns
  p.core_active_watts = 2.0;
  EnergyAccounting acc(p);
  acc.add_active_cycles(1'000'000'000);  // 1 second at 1 GHz
  EXPECT_NEAR(acc.breakdown().core_active_j, 2.0, 1e-9);
}

TEST(EnergyAccounting, TransferPricing) {
  EnergyParams p;
  p.transfer_nj_base = 2.0;
  p.transfer_nj_per_hop = 1.0;
  p.cross_link_nj = 5.0;
  EnergyAccounting acc(p);
  acc.add_transfer(3, true);
  EXPECT_NEAR(acc.breakdown().transfer_j, (2.0 + 3.0 + 5.0) * 1e-9, 1e-15);
  acc.add_transfer(1, false);
  EXPECT_NEAR(acc.breakdown().transfer_j, (10.0 + 3.0) * 1e-9, 1e-15);
}

TEST(EnergyAccounting, PackageVsDramSplit) {
  EnergyParams p;
  EnergyAccounting acc(p);
  acc.add_memory_fetch();
  acc.add_directory_lookup();
  const EnergyBreakdown& e = acc.breakdown();
  EXPECT_NEAR(e.dram_j(), p.memory_nj * 1e-9, 1e-15);
  EXPECT_NEAR(e.package_j(), p.directory_nj * 1e-9, 1e-15);
  EXPECT_NEAR(e.total_j(), e.package_j() + e.dram_j(), 1e-15);
}

TEST(EnergyEmergent, EnergyPerOpGrowsWithContention) {
  double e2 = 0.0;
  double e16 = 0.0;
  for (auto [n, out] : {std::pair<CoreId, double*>{2, &e2}, {16, &e16}}) {
    Machine m(xeon_e5_2x18());
    HighContentionProgram prog(Primitive::kFaa, 0);
    const RunStats st = m.run(prog, n, 20'000, 200'000);
    *out = st.energy_per_op_nj();
  }
  // More threads spin longer per completed op: energy/op rises sharply.
  EXPECT_GT(e16, 3.0 * e2);
}

TEST(EnergyEmergent, PrivateLinesAreCheapest) {
  Machine shared(xeon_e5_2x18());
  HighContentionProgram hc(Primitive::kFaa, 0);
  const double e_shared =
      shared.run(hc, 8, 20'000, 200'000).energy_per_op_nj();

  Machine priv(xeon_e5_2x18());
  LowContentionProgram lc(Primitive::kFaa, 0);
  const double e_priv = priv.run(lc, 8, 20'000, 200'000).energy_per_op_nj();

  EXPECT_GT(e_shared, 5.0 * e_priv);
}

TEST(EnergyEmergent, SpinEnergyDominatesUnderSaturation) {
  Machine m(xeon_e5_2x18());
  HighContentionProgram prog(Primitive::kFaa, 0);
  const RunStats st = m.run(prog, 36, 20'000, 200'000);
  EXPECT_GT(st.energy.core_spin_j, st.energy.core_active_j);
}

}  // namespace
}  // namespace am::sim
