// Equivalence of the simulator's functional op semantics with the real
// std::atomic execution path: the same op sequence applied through
// am::execute and through the machine must produce identical observations,
// success flags and final values.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "atomics/primitives.hpp"
#include "common/random.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"

namespace am {
namespace {

struct Step {
  Primitive prim;
  OpResult hw;
};

/// Runs a random single-threaded op sequence on a real atomic.
std::vector<Step> run_hw(const std::vector<Primitive>& prims) {
  std::atomic<std::uint64_t> cell{0};
  OpContext ctx;
  std::vector<Step> steps;
  for (Primitive p : prims) {
    steps.push_back({p, execute(p, cell, ctx)});
  }
  steps.push_back({Primitive::kLoad, execute(Primitive::kLoad, cell, ctx)});
  return steps;
}

/// Collects per-op results from the machine via a recording program.
class Recorder final : public sim::ThreadProgram {
 public:
  explicit Recorder(std::vector<Primitive> prims) : prims_(std::move(prims)) {}

  std::optional<sim::IssueRequest> next_op(sim::CoreId core,
                                           Xoshiro256&) override {
    if (core != 0 || next_ >= prims_.size()) return std::nullopt;
    sim::IssueRequest r;
    r.prim = prims_[next_++];
    r.line = 0;
    return r;
  }
  void on_result(sim::CoreId, const OpResult& r) override {
    results.push_back(r);
  }

  std::vector<OpResult> results;

 private:
  std::vector<Primitive> prims_;
  std::size_t next_ = 0;
};

std::vector<Primitive> random_sequence(std::uint64_t seed, std::size_t len) {
  Xoshiro256 rng(seed);
  std::vector<Primitive> prims;
  for (std::size_t i = 0; i < len; ++i) {
    prims.push_back(kAllPrimitives[rng.next_below(std::size(kAllPrimitives))]);
  }
  prims.push_back(Primitive::kLoad);  // final observation
  return prims;
}

class SemanticsEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SemanticsEquivalence, SimMatchesStdAtomic) {
  const auto prims = random_sequence(GetParam(), 64);
  // Hardware reference (drop the extra trailing load run_hw adds itself).
  std::vector<Primitive> hw_prims(prims.begin(), prims.end() - 1);
  const auto hw = run_hw(hw_prims);

  sim::Machine machine(sim::test_machine(1));
  Recorder rec(prims);
  machine.run(rec, 1, 0, ~sim::Cycles{0} / 2);

  ASSERT_EQ(rec.results.size(), hw.size());
  for (std::size_t i = 0; i < hw.size(); ++i) {
    SCOPED_TRACE("op " + std::to_string(i) + " " +
                 std::string(to_string(hw[i].prim)));
    EXPECT_EQ(rec.results[i].success, hw[i].hw.success);
    EXPECT_EQ(rec.results[i].observed, hw[i].hw.observed);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSequences, SemanticsEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233));

TEST(Semantics, CasLoopAttemptsMatchSingleThread) {
  // Uncontended CASLOOP: exactly one attempt, both backends.
  std::atomic<std::uint64_t> cell{0};
  OpContext ctx;
  const OpResult hw = execute(Primitive::kCasLoop, cell, ctx);
  EXPECT_EQ(hw.attempts, 1u);
  EXPECT_TRUE(hw.success);

  sim::Machine machine(sim::test_machine(1));
  Recorder rec({Primitive::kCasLoop});
  const auto st = machine.run(rec, 1, 0, ~sim::Cycles{0} / 2);
  EXPECT_EQ(st.threads[0].attempts, 1u);
}

TEST(Semantics, TasReportsAcquisitionOnlyWhenClear) {
  std::atomic<std::uint64_t> cell{0};
  OpContext ctx;
  EXPECT_TRUE(execute(Primitive::kTas, cell, ctx).success);
  EXPECT_FALSE(execute(Primitive::kTas, cell, ctx).success);
}

}  // namespace
}  // namespace am
