#include <gtest/gtest.h>

#include "sim/config.hpp"

namespace am::sim {
namespace {

TEST(Presets, XeonShape) {
  const MachineConfig c = xeon_e5_2x18();
  EXPECT_EQ(c.core_count(), 36u);
  EXPECT_EQ(c.interconnect, InterconnectKind::kTwoSocket);
  EXPECT_LT(c.same_socket_xfer, c.cross_socket_xfer);
  const auto ic = c.make_interconnect();
  ASSERT_NE(ic, nullptr);
  EXPECT_EQ(ic->core_count(), 36u);
}

TEST(Presets, KnlShape) {
  const MachineConfig c = knl_64();
  EXPECT_EQ(c.core_count(), 64u);
  EXPECT_EQ(c.interconnect, InterconnectKind::kMesh);
  const auto ic = c.make_interconnect();
  ASSERT_NE(ic, nullptr);
  EXPECT_EQ(ic->core_count(), 64u);
  // KNL runs slower and pays more per RMW than the Xeon.
  EXPECT_LT(c.freq_ghz, xeon_e5_2x18().freq_ghz);
  EXPECT_GT(c.exec_cost_of(Primitive::kFaa),
            xeon_e5_2x18().exec_cost_of(Primitive::kFaa));
}

TEST(Presets, LookupByName) {
  EXPECT_EQ(preset_by_name("xeon").name, "xeon-e5-2x18");
  EXPECT_EQ(preset_by_name("e5").name, "xeon-e5-2x18");
  EXPECT_EQ(preset_by_name("knl").name, "knl-64");
  EXPECT_EQ(preset_by_name("phi").name, "knl-64");
  EXPECT_EQ(preset_by_name("nope").name, "test-uniform");
}

TEST(Presets, ExecCostsOrdering) {
  // Plain accesses are cheap; lock-prefixed RMWs cost tens of cycles; CAS
  // carries the compare overhead on top.
  for (const MachineConfig& c : {xeon_e5_2x18(), knl_64()}) {
    EXPECT_LT(c.exec_cost_of(Primitive::kLoad),
              c.exec_cost_of(Primitive::kFaa));
    EXPECT_LE(c.exec_cost_of(Primitive::kFaa),
              c.exec_cost_of(Primitive::kCas));
  }
}

TEST(TestMachine, RoundNumbers) {
  const MachineConfig c = test_machine(4, 100, 4, 200);
  EXPECT_EQ(c.core_count(), 4u);
  EXPECT_EQ(c.uniform_xfer, 100u);
  EXPECT_EQ(c.l1_hit, 4u);
  EXPECT_EQ(c.memory_fill, 200u);
  EXPECT_EQ(c.arbitration, Arbitration::kFifo);
}

}  // namespace
}  // namespace am::sim
