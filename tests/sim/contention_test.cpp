// Emergent contention phenomena: the behaviours the paper measures must
// fall out of the machine's hand-off process rather than being hard-coded.
#include <gtest/gtest.h>

#include "locks/lock_programs.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"

namespace am::sim {
namespace {

RunStats run_high_contention(MachineConfig cfg, Primitive prim, CoreId n,
                             Cycles work = 0, std::uint64_t seed = 1) {
  Machine m(std::move(cfg), seed);
  HighContentionProgram prog(prim, work);
  return m.run(prog, n, 30'000, 250'000);
}

TEST(CasEmergence, SingleShotCasSuccessRateIsOneOverN) {
  // Deterministic FIFO rotation: exactly one success per full rotation.
  for (CoreId n : {2u, 4u, 8u}) {
    const RunStats st =
        run_high_contention(test_machine(8), Primitive::kCas, n);
    EXPECT_NEAR(st.success_rate(), 1.0 / n, 0.02)
        << "threads=" << n;
  }
}

TEST(CasEmergence, CasLoopNeedsNAcquisitionsPerOp) {
  for (CoreId n : {2u, 4u, 8u}) {
    const RunStats st =
        run_high_contention(test_machine(8), Primitive::kCasLoop, n);
    const double attempts_per_op =
        static_cast<double>(st.total_attempts()) /
        static_cast<double>(st.total_ops());
    EXPECT_NEAR(attempts_per_op, static_cast<double>(n), 0.25)
        << "threads=" << n;
  }
}

TEST(CasEmergence, FaaBeatsCasLoopByFactorN) {
  const CoreId n = 8;
  const RunStats faa =
      run_high_contention(test_machine(8), Primitive::kFaa, n);
  const RunStats loop =
      run_high_contention(test_machine(8), Primitive::kCasLoop, n);
  const double ratio = faa.throughput_ops_per_kcycle() /
                       loop.throughput_ops_per_kcycle();
  // Exec costs are equal on the test machine, so the ratio is ~n.
  EXPECT_NEAR(ratio, static_cast<double>(n), 1.0);
}

TEST(CasEmergence, CasLoopUnderFifoIsWinnerTakesAll) {
  const RunStats st =
      run_high_contention(test_machine(4), Primitive::kCasLoop, 4);
  // Deterministic rotation: one core completes (almost) everything.
  EXPECT_LT(st.jain_fairness_ops(), 0.3);
  std::uint64_t max_ops = 0;
  for (const auto& t : st.threads) max_ops = std::max(max_ops, t.ops);
  EXPECT_GT(static_cast<double>(max_ops),
            0.9 * static_cast<double>(st.total_ops()));
}

TEST(Fairness, FifoIsFairForFaa) {
  const RunStats st = run_high_contention(test_machine(8), Primitive::kFaa, 8);
  EXPECT_GT(st.jain_fairness_ops(), 0.999);
  EXPECT_GT(st.min_max_ops_ratio(), 0.98);
}

TEST(Fairness, ProximityBiasDegradesFairnessOnTwoSockets) {
  MachineConfig biased = xeon_e5_2x18();
  MachineConfig fair = xeon_e5_2x18();
  fair.arbitration = Arbitration::kFifo;
  const RunStats b = run_high_contention(biased, Primitive::kFaa, 36);
  const RunStats f = run_high_contention(fair, Primitive::kFaa, 36);
  EXPECT_GT(f.jain_fairness_ops(), 0.99);
  EXPECT_LT(b.jain_fairness_ops(), f.jain_fairness_ops() - 0.02);
}

TEST(Fairness, ProximityBiasFavoursOwnersSocketNeighbours) {
  // With the line mostly owned inside one socket, same-socket cores should
  // complete more ops than cross-socket cores on average.
  const RunStats st =
      run_high_contention(xeon_e5_2x18(), Primitive::kFaa, 36, 0, 3);
  double socket0 = 0.0;
  double socket1 = 0.0;
  for (std::size_t c = 0; c < st.threads.size(); ++c) {
    (c < 18 ? socket0 : socket1) += static_cast<double>(st.threads[c].ops);
  }
  // Both sockets participate (no starvation) ...
  EXPECT_GT(socket0, 0.0);
  EXPECT_GT(socket1, 0.0);
}

TEST(Regimes, ThroughputTransitionsAtCrossoverWork) {
  // Scan work: below w* throughput is flat; above it drops as 1/(w+h).
  const CoreId n = 4;
  const MachineConfig cfg = test_machine(4);
  const double hold = 100.0 + 4.0 + cfg.exec_cost_of(Primitive::kFaa);
  const double wstar = (n - 1) * hold;

  const RunStats low_w =
      run_high_contention(cfg, Primitive::kFaa, n, 0);
  const RunStats mid_w = run_high_contention(
      cfg, Primitive::kFaa, n, static_cast<Cycles>(wstar * 0.5));
  const RunStats high_w = run_high_contention(
      cfg, Primitive::kFaa, n, static_cast<Cycles>(wstar * 4.0));

  // Saturated regime: work is hidden behind the queue, throughput flat.
  EXPECT_NEAR(mid_w.throughput_ops_per_kcycle(),
              low_w.throughput_ops_per_kcycle(),
              low_w.throughput_ops_per_kcycle() * 0.05);
  // Past the crossover, throughput is work-bound and clearly lower.
  const double expected =
      n * 1000.0 / (wstar * 4.0 + hold);
  EXPECT_NEAR(high_w.throughput_ops_per_kcycle(), expected, expected * 0.1);
}

TEST(Regimes, LatencyHiddenByWorkInLowContention) {
  const CoreId n = 4;
  const MachineConfig cfg = test_machine(4);
  const double hold = 100.0 + 4.0 + cfg.exec_cost_of(Primitive::kFaa);
  const RunStats st = run_high_contention(
      cfg, Primitive::kFaa, n, static_cast<Cycles>((n - 1) * hold * 4.0));
  // Requests rarely queue: latency ~ one transfer + exec.
  EXPECT_LT(st.mean_latency_cycles(), hold * 1.5);
}

TEST(MixedReadWrite, WritersInvalidateReaders) {
  Machine m(test_machine(8));
  MixedReadWriteProgram prog(Primitive::kFaa, 0.2, 0);
  const RunStats st = m.run(prog, 8, 20'000, 150'000);
  // Loads dominate ops; every write forces re-fetches, so transfers and
  // invalidations are both well above zero.
  EXPECT_GT(st.invalidations, 100u);
  EXPECT_GT(st.transfers[static_cast<int>(Supply::kNear)], 100u);
  EXPECT_GT(st.total_ops(), 0u);
}

TEST(Zipf, SkewConcentratesContention) {
  auto run_zipf = [](double s) {
    Machine m(test_machine(8), 11);
    ZipfSharingProgram prog(Primitive::kFaa, 0, 256, s);
    return m.run(prog, 8, 20'000, 150'000);
  };
  const RunStats uniform = run_zipf(0.0);
  const RunStats skewed = run_zipf(1.2);
  // Skew funnels ops onto few hot lines: more waiting, lower throughput.
  EXPECT_LT(skewed.throughput_ops_per_kcycle(),
            uniform.throughput_ops_per_kcycle());
}

TEST(Knl, MeshDistanceShowsInLatency) {
  MachineConfig cfg = knl_64();
  Machine m(cfg);
  // Corner-to-corner transfer (core 0 to core 63 = 14 hops).
  m.prime_line(7, Mesi::kModified, 63, 0);
  const Cycles far_lat = m.measure_single_op(0, Primitive::kFaa, 7);
  m.prime_line(7, Mesi::kModified, 1, 0);
  const Cycles near_lat = m.measure_single_op(0, Primitive::kFaa, 7);
  EXPECT_GT(far_lat, near_lat + 13 * cfg.mesh_per_hop - 1);
}

}  // namespace
}  // namespace am::sim
