// Core invariants of the coherence machine: single-op latencies by line
// state, serialization of RMWs, concurrent LOAD scaling, invalidation
// bookkeeping, and determinism.
#include <gtest/gtest.h>

#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"

namespace am::sim {
namespace {

constexpr Cycles kXfer = 100;
constexpr Cycles kL1 = 4;
constexpr Cycles kMem = 200;

MachineConfig tiny(CoreId cores = 4) { return test_machine(cores, kXfer, kL1, kMem); }

Cycles exec_of(const MachineConfig& c, Primitive p) { return c.exec_cost_of(p); }

TEST(MachineSingleOp, MemoryFillForColdLine) {
  Machine m(tiny());
  // Line 7 cached nowhere: FAA pays memory fill + L1 + exec.
  const Cycles lat = m.measure_single_op(0, Primitive::kFaa, 7);
  EXPECT_EQ(lat, kMem + kL1 + exec_of(tiny(), Primitive::kFaa));
}

TEST(MachineSingleOp, LocalHitWhenLineModifiedLocally) {
  Machine m(tiny());
  m.prime_line(7, Mesi::kModified, 0, 5);
  const Cycles lat = m.measure_single_op(0, Primitive::kFaa, 7);
  EXPECT_EQ(lat, kL1 + exec_of(tiny(), Primitive::kFaa));
  EXPECT_EQ(m.line_value(7), 6u);
}

TEST(MachineSingleOp, LocalHitWhenLineExclusiveLocally) {
  Machine m(tiny());
  m.prime_line(7, Mesi::kExclusive, 0, 0);
  const Cycles lat = m.measure_single_op(0, Primitive::kSwap, 7);
  EXPECT_EQ(lat, kL1 + exec_of(tiny(), Primitive::kSwap));
}

TEST(MachineSingleOp, TransferWhenLineModifiedRemotely) {
  Machine m(tiny());
  m.prime_line(7, Mesi::kModified, 1, 0);
  const Cycles lat = m.measure_single_op(0, Primitive::kFaa, 7);
  EXPECT_EQ(lat, kXfer + kL1 + exec_of(tiny(), Primitive::kFaa));
  // Ownership moved: a second op by core 0 is a local hit.
  const Cycles lat2 = m.measure_single_op(0, Primitive::kFaa, 7);
  EXPECT_EQ(lat2, kL1 + exec_of(tiny(), Primitive::kFaa));
  EXPECT_EQ(m.line_state(7, 1), Mesi::kInvalid);
  EXPECT_EQ(m.line_state(7, 0), Mesi::kModified);
}

TEST(MachineSingleOp, LoadOnSharedCopyIsLocal) {
  Machine m(tiny());
  m.prime_line(7, Mesi::kShared, 0, 42);
  const Cycles lat = m.measure_single_op(0, Primitive::kLoad, 7);
  EXPECT_EQ(lat, kL1 + exec_of(tiny(), Primitive::kLoad));
}

TEST(MachineSingleOp, StoreOnSharedCopyNeedsUpgrade) {
  Machine m(tiny());
  m.prime_line(7, Mesi::kShared, 0, 42);
  const Cycles lat = m.measure_single_op(0, Primitive::kStore, 7);
  // Upgrade from Shared uses the shared-supply path, not a full transfer.
  EXPECT_EQ(lat, tiny().shared_supply + kL1 + exec_of(tiny(), Primitive::kStore));
  EXPECT_EQ(m.line_state(7, 0), Mesi::kModified);
}

TEST(MachineSingleOp, LoadFromRemoteModifiedDowngradesOwner) {
  Machine m(tiny());
  m.prime_line(7, Mesi::kModified, 1, 9);
  const Cycles lat = m.measure_single_op(0, Primitive::kLoad, 7);
  EXPECT_EQ(lat, kXfer + kL1 + exec_of(tiny(), Primitive::kLoad));
  EXPECT_EQ(m.line_state(7, 0), Mesi::kShared);
  EXPECT_EQ(m.line_state(7, 1), Mesi::kShared);
}

TEST(MachineSingleOp, SoleLoadFromMemoryGetsExclusive) {
  Machine m(tiny());
  const Cycles lat = m.measure_single_op(0, Primitive::kLoad, 7);
  EXPECT_EQ(lat, kMem + kL1 + exec_of(tiny(), Primitive::kLoad));
  EXPECT_EQ(m.line_state(7, 0), Mesi::kExclusive);
}

TEST(MachineRun, SingleCoreFaaThroughputIsLocalCost) {
  Machine m(tiny());
  HighContentionProgram prog(Primitive::kFaa, 0);
  const RunStats st = m.run(prog, 1, 10'000, 100'000);
  const double per_op = kL1 + exec_of(tiny(), Primitive::kFaa);
  const double expected_ops = 100'000.0 / per_op;
  EXPECT_NEAR(static_cast<double>(st.total_ops()), expected_ops,
              expected_ops * 0.01);
  EXPECT_NEAR(st.mean_latency_cycles(), per_op, 0.5);
}

TEST(MachineRun, TwoCoreFaaSerializesOnHandoffs) {
  Machine m(tiny(2));
  HighContentionProgram prog(Primitive::kFaa, 0);
  const RunStats st = m.run(prog, 2, 20'000, 200'000);
  // Steady state: every op needs a transfer: hold = xfer + l1 + exec.
  const double hold = kXfer + kL1 + exec_of(tiny(), Primitive::kFaa);
  const double expected_ops = 200'000.0 / hold;
  EXPECT_NEAR(static_cast<double>(st.total_ops()), expected_ops,
              expected_ops * 0.02);
  // FIFO hand-offs: both cores complete the same number of ops (+-1 edge).
  EXPECT_NEAR(static_cast<double>(st.threads[0].ops),
              static_cast<double>(st.threads[1].ops), 2.0);
}

TEST(MachineRun, ThroughputPlateausBeyondTwoCores) {
  // The signature result: RMW throughput on a shared line does not scale.
  double tput[3] = {0, 0, 0};
  int i = 0;
  for (CoreId n : {2u, 4u, 8u}) {
    Machine m(tiny(8));
    HighContentionProgram prog(Primitive::kFaa, 0);
    const RunStats st = m.run(prog, n, 20'000, 200'000);
    tput[i++] = st.throughput_ops_per_kcycle();
  }
  EXPECT_NEAR(tput[1], tput[0], tput[0] * 0.05);
  EXPECT_NEAR(tput[2], tput[0], tput[0] * 0.05);
}

TEST(MachineRun, LoadsScaleOnSharedLine) {
  Machine m(tiny(8));
  HighContentionProgram prog(Primitive::kLoad, 0);
  const RunStats st = m.run(prog, 8, 20'000, 100'000);
  // After warmup everyone holds a Shared copy: throughput ~ 8 / (l1+exec).
  const double per_op = kL1 + exec_of(tiny(), Primitive::kLoad);
  const double expected = 8.0 * 1000.0 / per_op;
  EXPECT_NEAR(st.throughput_ops_per_kcycle(), expected, expected * 0.02);
}

TEST(MachineRun, PerOpLatencyGrowsLinearlyWithCores) {
  double lat4 = 0.0;
  double lat8 = 0.0;
  {
    Machine m(tiny(8));
    HighContentionProgram prog(Primitive::kFaa, 0);
    lat4 = m.run(prog, 4, 20'000, 200'000).mean_latency_cycles();
  }
  {
    Machine m(tiny(8));
    HighContentionProgram prog(Primitive::kFaa, 0);
    lat8 = m.run(prog, 8, 20'000, 200'000).mean_latency_cycles();
  }
  EXPECT_NEAR(lat8 / lat4, 2.0, 0.15);
}

TEST(MachineRun, PrivateLinesDoNotInterfere) {
  Machine m(tiny(4));
  LowContentionProgram prog(Primitive::kFaa, 0);
  const RunStats st = m.run(prog, 4, 10'000, 100'000);
  const double per_op = kL1 + exec_of(tiny(), Primitive::kFaa);
  const double expected = 4.0 * 1000.0 / per_op;
  EXPECT_NEAR(st.throughput_ops_per_kcycle(), expected, expected * 0.02);
  EXPECT_EQ(st.transfers[static_cast<int>(Supply::kNear)], 0u);
  EXPECT_EQ(st.transfers[static_cast<int>(Supply::kFar)], 0u);
}

TEST(MachineRun, ValueMatchesCompletedIncrements) {
  Machine m(tiny(4));
  HighContentionProgram prog(Primitive::kFaa, 0);
  const RunStats st = m.run(prog, 4, 0, 50'000);
  // Every completed FAA increments line 0 by 1; ops counted over the whole
  // run here because warmup == 0 (plus possibly in-flight stragglers).
  EXPECT_GE(m.line_value(0), st.total_ops());
  EXPECT_LE(m.line_value(0), st.total_ops() + 4);
}

TEST(MachineRun, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    Machine m(xeon_e5_2x18(), 7);
    HighContentionProgram prog(Primitive::kCas, 50);
    const RunStats st = m.run(prog, 16, 10'000, 100'000);
    return std::tuple(st.total_ops(), st.total_successes(),
                      st.mean_latency_cycles());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(MachineRun, InvalidationsTrackOwnershipChanges) {
  Machine m(tiny(2));
  HighContentionProgram prog(Primitive::kFaa, 0);
  const RunStats st = m.run(prog, 2, 0, 50'000);
  // Every hand-off invalidates exactly one copy (the previous owner).
  const auto handoffs = st.transfers[static_cast<int>(Supply::kNear)];
  EXPECT_NEAR(static_cast<double>(st.invalidations),
              static_cast<double>(handoffs), 3.0);
}

TEST(MachineRun, RejectsMoreCoresThanMachineHas) {
  Machine m(tiny(2));
  HighContentionProgram prog(Primitive::kFaa, 0);
  EXPECT_THROW(m.run(prog, 3, 0, 1000), std::invalid_argument);
}

TEST(MachineRun, WorkDelaysReduceContention) {
  // With work >> (n-1)*hold the system leaves the saturated regime and
  // throughput is work-bound: X = n / (work + hold).
  const Cycles work = 4000;
  Machine m(tiny(4));
  HighContentionProgram prog(Primitive::kFaa, work);
  const RunStats st = m.run(prog, 4, 50'000, 400'000);
  const double hold = kXfer + kL1 + exec_of(tiny(), Primitive::kFaa);
  const double expected = 4.0 * 1000.0 / (static_cast<double>(work) + hold);
  EXPECT_NEAR(st.throughput_ops_per_kcycle(), expected, expected * 0.1);
}

}  // namespace
}  // namespace am::sim
