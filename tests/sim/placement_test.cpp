// Placement permutations: the PermutedInterconnect decorator and the
// backend's pin-order handling.
#include <gtest/gtest.h>

#include "bench_core/sim_backend.hpp"
#include "sim/config.hpp"
#include "sim/interconnect.hpp"

namespace am::sim {
namespace {

TEST(PermutedInterconnect, RemapsAllMetrics) {
  auto inner = std::make_unique<TwoSocketInterconnect>(4, 50, 150);
  // Swap the sockets' first cores: logical 0 -> physical 4 (socket 1).
  PermutedInterconnect ic(std::move(inner), {4, 1, 2, 3, 0, 5, 6, 7});
  // logical 0 (phys 4, socket 1) to logical 1 (phys 1, socket 0): far.
  EXPECT_EQ(ic.transfer_cycles(0, 1), 150u);
  EXPECT_EQ(ic.supply_class(0, 1), Supply::kFar);
  // logical 0 to logical 5 (phys 5, socket 1): near.
  EXPECT_EQ(ic.transfer_cycles(0, 5), 50u);
  EXPECT_EQ(ic.core_count(), 8u);
}

TEST(PermutedInterconnect, IdentityBeyondPermutation) {
  auto inner = std::make_unique<UniformInterconnect>(4, 10);
  PermutedInterconnect ic(std::move(inner), {1, 0});
  EXPECT_EQ(ic.transfer_cycles(2, 3), 10u);  // unmapped ids pass through
}

TEST(PermutedInterconnect, RejectsOutOfRange) {
  auto inner = std::make_unique<UniformInterconnect>(2, 10);
  EXPECT_THROW(PermutedInterconnect(std::move(inner), {0, 7}),
               std::invalid_argument);
}

TEST(PlacementFor, ScatterInterleavesHalves) {
  const auto perm = placement_for(8, true);
  ASSERT_EQ(perm.size(), 8u);
  EXPECT_EQ(perm[0], 0u);
  EXPECT_EQ(perm[1], 4u);
  EXPECT_EQ(perm[2], 1u);
  EXPECT_EQ(perm[3], 5u);
}

TEST(PlacementFor, CompactIsIdentity) {
  const auto perm = placement_for(4, false);
  const std::vector<CoreId> expected{0, 1, 2, 3};
  EXPECT_EQ(perm, expected);
}

TEST(PlacementFor, OddCoreCountCovered) {
  const auto perm = placement_for(5, true);
  ASSERT_EQ(perm.size(), 5u);
  std::vector<CoreId> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (CoreId i = 0; i < 5; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Placement, ScatterMakesTwoThreadHandoffCrossSocket) {
  // Two threads, compact: both on socket 0 -> near transfers only.
  // Two threads, scatter: sockets 0 and 1 -> far transfers only.
  bench::SimBackend backend(xeon_e5_2x18());
  bench::WorkloadConfig w;
  w.mode = bench::WorkloadMode::kHighContention;
  w.prim = Primitive::kFaa;
  w.threads = 2;

  w.pin_order = PinOrder::kCompact;
  const auto compact = backend.run(w);
  w.pin_order = PinOrder::kScatter;
  const auto scatter = backend.run(w);

  EXPECT_GT(compact.transfers[static_cast<int>(Supply::kNear)], 100u);
  EXPECT_EQ(compact.transfers[static_cast<int>(Supply::kFar)], 0u);
  EXPECT_GT(scatter.transfers[static_cast<int>(Supply::kFar)], 100u);
  EXPECT_EQ(scatter.transfers[static_cast<int>(Supply::kNear)], 0u);
  // Far hand-offs are slower: scatter throughput is visibly lower.
  EXPECT_LT(scatter.throughput_ops_per_kcycle(),
            compact.throughput_ops_per_kcycle() * 0.7);
}

TEST(Placement, ScatterLatencyMatchesCrossSocketHold) {
  bench::SimBackend backend(xeon_e5_2x18());
  bench::WorkloadConfig w;
  w.mode = bench::WorkloadMode::kHighContention;
  w.prim = Primitive::kFaa;
  w.threads = 2;
  w.pin_order = PinOrder::kScatter;
  const auto run = backend.run(w);
  // hold = t_cross + l1 + exec = 180 + 4 + 19; latency ~ 2*hold.
  EXPECT_NEAR(run.mean_latency_cycles(), 2.0 * 203.0, 10.0);
}

}  // namespace
}  // namespace am::sim
