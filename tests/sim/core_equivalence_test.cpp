// Differential byte-identity harness for the fast-path simulator core.
//
// Every case replays one deterministic workload through BOTH cores — the
// live sim::Machine and the frozen seed implementation in
// sim::legacy::Machine — and renders an exhaustive text digest of the run:
// every RunStats field (doubles in hexfloat, so equality is bit equality),
// the final directory state of every touched line, the per-core OpResult
// streams, and the SimBackend cache-identity string. The suite asserts
//   (a) new digest == legacy digest for every case (the differential
//       proof: the rewrite changed the data layout, not the simulation),
//   (b) the concatenated corpus == the committed golden snapshot captured
//       from the seed core (the drift guard: the pair cannot wander off
//       together; cached sweep results stay valid).
// Deliberate behaviour changes are re-blessed with
// scripts/regen_golden_traces.sh (AM_REGEN_GOLDEN=1), which rewrites the
// corpus files alongside the text traces.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iomanip>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_core/sim_backend.hpp"
#include "conformance/generator.hpp"
#include "sim/config.hpp"
#include "sim/legacy_machine.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"

#ifndef AM_GOLDEN_DIR
#define AM_GOLDEN_DIR "tests/sim/golden"
#endif

namespace am {
namespace {

// --- digest rendering ------------------------------------------------------

void put_double(std::ostringstream& os, const char* key, double v) {
  os << key << '=' << std::hexfloat << v << std::defaultfloat << '\n';
}

void digest_hist(std::ostringstream& os, const LogHistogram& h) {
  os << "hist.n=" << h.total_count();
  os << " buckets=";
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (h.bucket(i) != 0) os << i << ':' << h.bucket(i) << ',';
  }
  os << '\n';
  put_double(os, "hist.min", h.observed_min());
  put_double(os, "hist.max", h.observed_max());
  put_double(os, "hist.mean", h.mean());
}

void digest_stats(std::ostringstream& os, const sim::RunStats& rs) {
  os << "measured_cycles=" << rs.measured_cycles << '\n';
  put_double(os, "freq_ghz", rs.freq_ghz);
  for (std::size_t t = 0; t < rs.threads.size(); ++t) {
    const sim::ThreadStats& th = rs.threads[t];
    os << "thread[" << t << "] ops=" << th.ops
       << " succ=" << th.successes << " fail=" << th.failures
       << " attempts=" << th.attempts << " exec=" << th.exec_cycles
       << " wait=" << th.wait_cycles << " work=" << th.work_cycles
       << " lmin=" << th.latency_min << " lmax=" << th.latency_max << '\n';
    os << "  by_prim=";
    for (std::size_t p = 0; p < th.ops_by_prim.size(); ++p) {
      os << th.ops_by_prim[p] << '/' << th.successes_by_prim[p] << ' ';
    }
    os << '\n';
    put_double(os, "  latency_sum", th.latency_sum);
    digest_hist(os, th.latency_hist);
  }
  os << "transfers=";
  for (const std::uint64_t v : rs.transfers) os << v << ' ';
  os << '\n';
  os << "invalidations=" << rs.invalidations
     << " memory_fetches=" << rs.memory_fetches
     << " evictions=" << rs.evictions << '\n';
  for (const sim::LineProfile& lp : rs.line_profiles) {
    os << "line_prof[" << lp.line << "] acc=" << lp.accesses
       << " acq=" << lp.acquisitions << " inv=" << lp.invalidations
       << " qsum=" << lp.queue_depth_sum << " qmax=" << lp.queue_depth_max
       << " hold=" << lp.hold_cycles << " supply=";
    for (const std::uint64_t v : lp.supply) os << v << ' ';
    os << '\n';
  }
  os << "epoch_cycles=" << rs.epoch_cycles << '\n';
  for (const sim::EpochSample& e : rs.epochs) {
    os << "epoch[" << e.start << "] ops=" << e.ops
       << " attempts=" << e.attempts << " wait=" << e.wait_cycles
       << " exec=" << e.exec_cycles << " outmax=" << e.outstanding_max
       << '\n';
  }
  put_double(os, "energy.core_active_j", rs.energy.core_active_j);
  put_double(os, "energy.core_spin_j", rs.energy.core_spin_j);
  put_double(os, "energy.uncore_static_j", rs.energy.uncore_static_j);
  put_double(os, "energy.transfer_j", rs.energy.transfer_j);
  put_double(os, "energy.directory_j", rs.energy.directory_j);
  put_double(os, "energy.memory_j", rs.energy.memory_j);
}

/// Final machine state: every touched line's directory record, ascending.
/// Works on either core (identical public surface).
template <class M>
void digest_state(std::ostringstream& os, const M& m) {
  for (const sim::LineId id : m.touched_lines()) {
    const auto snap = m.snapshot_line(id);
    os << "line[" << id << "] owner=";
    if (snap.owner == sim::kNoCore) {
      os << '-';
    } else {
      os << snap.owner;
    }
    os << " st=" << static_cast<int>(snap.owner_state) << " sharers=";
    for (const sim::CoreId c : snap.sharers) os << c << ',';
    os << " val=" << snap.value << " busy=" << snap.busy
       << " q=" << snap.queued << '\n';
  }
}

struct CaseSpec {
  std::string name;
  /// Builds the program; receives nothing, returns an owning pointer plus
  /// an optional results-dump hook run after the program executed.
  std::function<std::unique_ptr<sim::ThreadProgram>()> make_program;
  sim::CoreId active_cores = 8;
  sim::Cycles warmup = 0;
  sim::Cycles measure = sim::Cycles{1} << 30;
  bool profile_lines = false;
  sim::Cycles epoch_cycles = 0;
};

/// Runs one case on machine type M and renders the full digest.
template <class M>
std::string run_case(const sim::MachineConfig& config, std::uint64_t seed,
                     const CaseSpec& spec) {
  M machine(config, seed);
  machine.set_line_profiling(spec.profile_lines);
  machine.set_epoch_cycles(spec.epoch_cycles);
  std::unique_ptr<sim::ThreadProgram> program = spec.make_program();
  const sim::CoreId active =
      std::min<sim::CoreId>(spec.active_cores, machine.core_count());
  const sim::RunStats rs =
      machine.run(*program, active, spec.warmup, spec.measure);

  std::ostringstream os;
  os << "== " << spec.name << " ==\n";
  digest_stats(os, rs);
  digest_state(os, machine);
  // Script programs also pin the per-core OpResult streams the machine
  // reported (the conformance oracle's evidence).
  if (const auto* ms =
          dynamic_cast<const conformance::MultiScriptProgram*>(program.get())) {
    for (std::size_t c = 0; c < ms->results().size(); ++c) {
      os << "results[" << c << "]=";
      for (const OpResult& r : ms->results()[c]) {
        os << r.success << ':' << r.observed << ':' << r.attempts << ' ';
      }
      os << '\n';
    }
  }
  return os.str();
}

// --- the corpus ------------------------------------------------------------

constexpr std::uint64_t kSeeds[] = {101, 202};

const conformance::SharingPattern kPatterns[] = {
    conformance::SharingPattern::kSingleLine,
    conformance::SharingPattern::kPrivate,
    conformance::SharingPattern::kUniform,
    conformance::SharingPattern::kZipf,
    conformance::SharingPattern::kMixed,
};

/// The generated programs outlive the specs (MultiScriptProgram holds a
/// pointer); keep them alive per corpus build.
struct Corpus {
  std::vector<std::unique_ptr<conformance::GeneratedProgram>> scripts;
  std::vector<std::pair<std::uint64_t, CaseSpec>> cases;  ///< (seed, spec)
};

Corpus build_corpus() {
  Corpus corpus;

  // Seeded conformance scripts: all sharing patterns, both seeds.
  for (const std::uint64_t seed : kSeeds) {
    for (const conformance::SharingPattern pat : kPatterns) {
      conformance::GenConfig gen;
      gen.cores = 8;
      gen.ops_per_core = 48;
      gen.lines = 6;
      gen.pattern = pat;
      auto script = std::make_unique<conformance::GeneratedProgram>(
          conformance::generate(seed, gen));
      const conformance::GeneratedProgram* raw = script.get();
      corpus.scripts.push_back(std::move(script));

      CaseSpec spec;
      spec.name = std::string("script/") + conformance::to_string(pat) +
                  "/seed" + std::to_string(seed);
      spec.make_program = [raw] {
        return std::make_unique<conformance::MultiScriptProgram>(*raw);
      };
      spec.active_cores = 8;
      corpus.cases.emplace_back(seed, spec);
    }
  }

  // Stochastic programs: exercise per-op RNG draws, profiling, epoch
  // sampling, and the static-plan fast path (jitter-free HC / LC / sharded).
  {
    CaseSpec spec;
    spec.name = "hc_faa_jitter";  // dynamic path: draws RNG per op
    spec.make_program = [] {
      return std::make_unique<sim::HighContentionProgram>(
          Primitive::kFaa, /*work=*/64, /*line=*/0, /*jitter=*/0.3);
    };
    spec.active_cores = 8;
    spec.warmup = 200;
    spec.measure = 3000;
    spec.profile_lines = true;
    spec.epoch_cycles = 500;
    corpus.cases.emplace_back(7, spec);
  }
  {
    CaseSpec spec;
    spec.name = "hc_casloop_static";  // static plan, CASLOOP retries
    spec.make_program = [] {
      return std::make_unique<sim::HighContentionProgram>(
          Primitive::kCasLoop, /*work=*/0, /*line=*/3);
    };
    spec.active_cores = 6;
    spec.measure = 2500;
    corpus.cases.emplace_back(11, spec);
  }
  {
    CaseSpec spec;
    spec.name = "lc_cas_static";  // static plan, private lines, epochs
    spec.make_program = [] {
      return std::make_unique<sim::LowContentionProgram>(Primitive::kCas,
                                                         /*work=*/16);
    };
    spec.active_cores = 8;
    spec.warmup = 100;
    spec.measure = 2000;
    spec.epoch_cycles = 400;
    corpus.cases.emplace_back(13, spec);
  }
  {
    CaseSpec spec;
    spec.name = "sharded_faa_static";  // static plan + profiling
    spec.make_program = [] {
      return std::make_unique<sim::ShardedProgram>(Primitive::kFaa,
                                                   /*work=*/8,
                                                   /*group_size=*/4);
    };
    spec.active_cores = 8;
    spec.measure = 2000;
    spec.profile_lines = true;
    corpus.cases.emplace_back(17, spec);
  }
  {
    CaseSpec spec;
    spec.name = "zipf_swap";  // dynamic path: sampler draws per op
    spec.make_program = [] {
      return std::make_unique<sim::ZipfSharingProgram>(
          Primitive::kSwap, /*work=*/24, /*n_lines=*/16, /*s=*/1.2);
    };
    spec.active_cores = 8;
    spec.measure = 2500;
    corpus.cases.emplace_back(19, spec);
  }
  {
    CaseSpec spec;
    spec.name = "mixed_rw_cas";  // dynamic path: per-op prim draw
    spec.make_program = [] {
      return std::make_unique<sim::MixedReadWriteProgram>(
          Primitive::kCas, /*write_fraction=*/0.3, /*work=*/16);
    };
    spec.active_cores = 12;
    spec.measure = 2500;
    corpus.cases.emplace_back(23, spec);
  }

  return corpus;
}

/// Cache-identity keys for the preset — locks MachineConfig::fingerprint()
/// (and thus every sweep-cache key) into the golden corpus.
std::string identity_block(const sim::MachineConfig& config) {
  bench::SimBackendOptions opts;
  bench::SimBackend backend(config, opts);
  return "cache_identity=" + backend.cache_identity() + "\n";
}

template <class M>
std::string corpus_digest(const sim::MachineConfig& config) {
  const Corpus corpus = build_corpus();
  std::string out = identity_block(config);
  for (const auto& [seed, spec] : corpus.cases) {
    out += run_case<M>(config, seed, spec);
  }
  return out;
}

// --- tests -----------------------------------------------------------------

void check_preset(const sim::MachineConfig& config,
                  const std::string& golden_name) {
  const Corpus corpus = build_corpus();

  // (a) differential: new core vs frozen seed core, case by case so a
  // divergence names its workload.
  std::string combined = identity_block(config);
  for (const auto& [seed, spec] : corpus.cases) {
    const std::string fresh = run_case<sim::Machine>(config, seed, spec);
    const std::string reference =
        run_case<sim::legacy::Machine>(config, seed, spec);
    ASSERT_EQ(fresh, reference)
        << "fast-path core diverged from the seed core on case '" << spec.name
        << "' (preset " << config.name << ", seed " << seed << ")";
    combined += fresh;
  }

  // (b) golden snapshot captured from the seed core.
  const std::string path = std::string(AM_GOLDEN_DIR) + "/" + golden_name;
  if (std::getenv("AM_REGEN_GOLDEN") != nullptr) {
    const std::string blessed = corpus_digest<sim::legacy::Machine>(config);
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << blessed;
    GTEST_SKIP() << "golden corpus regenerated: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — run scripts/regen_golden_traces.sh to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(combined, expected.str())
      << "run digest diverged from " << path
      << " — if the change is intentional, re-bless with "
         "scripts/regen_golden_traces.sh";
}

TEST(CoreEquivalence, XeonPreset) {
  check_preset(sim::xeon_e5_2x18(), "xeon_e5_2x18_equivalence.digest");
}

TEST(CoreEquivalence, KnlPreset) {
  check_preset(sim::knl_64(), "knl_64_equivalence.digest");
}

TEST(CoreEquivalence, TestMachinePreset) {
  check_preset(sim::test_machine(8), "test_machine_8_equivalence.digest");
}

}  // namespace
}  // namespace am
