// Watchdog contract: a machine with a cycle budget or progress requirement
// raises a structured PointTimeout instead of running (or spinning) forever,
// and an armed-but-generous watchdog never perturbs results.
#include <gtest/gtest.h>

#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"

namespace am::sim {
namespace {

MachineConfig tiny() { return test_machine(4, 100, 4, 200); }

TEST(Watchdog, CycleBudgetRaisesStructuredTimeout) {
  Machine m(tiny(), 1);
  m.set_watchdog(WatchdogConfig{/*max_cycles=*/50, /*progress_events=*/0});
  HighContentionProgram prog(Primitive::kFaa, 0, 0, 0.0);
  try {
    m.run(prog, 4, 1'000, 10'000);
    FAIL() << "run() outlived a 50-cycle budget without PointTimeout";
  } catch (const PointTimeout& e) {
    EXPECT_EQ(e.kind, PointTimeout::Kind::kCycleBudget);
    EXPECT_GT(e.at_cycle, 50u);
    EXPECT_NE(std::string(e.what()).find("cycle budget"), std::string::npos);
  }
}

TEST(Watchdog, NoProgressRaisesLivelockTimeout) {
  Machine m(tiny(), 1);
  // One event without a grant or retirement counts as stuck: the very first
  // fetch event trips it, which is exactly what this test wants — the
  // detector fires without needing a contrived real livelock.
  m.set_watchdog(WatchdogConfig{/*max_cycles=*/0, /*progress_events=*/1});
  HighContentionProgram prog(Primitive::kFaa, 0, 0, 0.0);
  try {
    m.run(prog, 4, 1'000, 10'000);
    FAIL() << "run() made no progress marks yet never timed out";
  } catch (const PointTimeout& e) {
    EXPECT_EQ(e.kind, PointTimeout::Kind::kNoProgress);
    EXPECT_NE(std::string(e.what()).find("no forward progress"),
              std::string::npos);
  }
}

TEST(Watchdog, GenerousBudgetDoesNotPerturbResults) {
  HighContentionProgram prog(Primitive::kFaa, 0, 0, 0.0);
  Machine plain(tiny(), 7);
  const RunStats base = plain.run(prog, 4, 1'000, 10'000);

  Machine watched(tiny(), 7);
  watched.set_watchdog(
      WatchdogConfig{/*max_cycles=*/100'000'000, /*progress_events=*/1'000'000});
  const RunStats guarded = watched.run(prog, 4, 1'000, 10'000);

  ASSERT_EQ(base.threads.size(), guarded.threads.size());
  for (std::size_t i = 0; i < base.threads.size(); ++i) {
    EXPECT_EQ(base.threads[i].ops, guarded.threads[i].ops) << "core " << i;
    EXPECT_EQ(base.threads[i].attempts, guarded.threads[i].attempts);
  }
  EXPECT_EQ(base.invalidations, guarded.invalidations);
}

TEST(Watchdog, DisabledByDefault) {
  Machine m(tiny(), 1);
  EXPECT_EQ(m.watchdog().max_cycles, 0u);
  EXPECT_EQ(m.watchdog().progress_events, 0u);
  // A default machine runs unbounded workloads to completion as before.
  HighContentionProgram prog(Primitive::kFaa, 0, 0, 0.0);
  const RunStats stats = m.run(prog, 2, 500, 2'000);
  EXPECT_GT(stats.threads.at(0).ops, 0u);
}

}  // namespace
}  // namespace am::sim
