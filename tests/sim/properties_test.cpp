// Property sweep over the machine: structural invariants that must hold for
// every (primitive, thread count, arbitration policy) combination.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"

namespace am::sim {
namespace {

using Case = std::tuple<Primitive, CoreId, Arbitration>;

class MachineInvariants : public ::testing::TestWithParam<Case> {};

TEST_P(MachineInvariants, HoldOnHighContentionRuns) {
  const auto [prim, threads, arb] = GetParam();
  MachineConfig cfg = test_machine(16);
  cfg.arbitration = arb;
  Machine m(cfg, 99);
  HighContentionProgram prog(prim, 0);
  // warmup == 0 so the line value can be compared against window counts.
  const RunStats st = m.run(prog, threads, 0, 120'000);

  // 1. Progress.
  ASSERT_GT(st.total_ops(), 0u);
  EXPECT_GT(st.throughput_ops_per_kcycle(), 0.0);

  // 2. Count algebra per thread.
  for (const auto& t : st.threads) {
    EXPECT_EQ(t.ops, t.successes + t.failures);
    EXPECT_GE(t.attempts, t.ops);
    if (t.ops > 0) {
      EXPECT_GE(t.latency_min, cfg.l1_hit + cfg.exec_cost_of(prim));
      EXPECT_LE(t.latency_min, t.latency_max);
      EXPECT_GE(t.mean_latency(), static_cast<double>(t.latency_min));
      EXPECT_LE(t.mean_latency(), static_cast<double>(t.latency_max));
    }
    std::uint64_t per_prim = 0;
    for (auto v : t.ops_by_prim) per_prim += v;
    EXPECT_EQ(per_prim, t.ops);
  }

  // 3. Value conservation for increment-semantics primitives.
  if (prim == Primitive::kFaa || prim == Primitive::kCas ||
      prim == Primitive::kCasLoop) {
    // Every success added exactly 1; stragglers after the window add a few.
    EXPECT_GE(m.line_value(0), st.total_successes());
    EXPECT_LE(m.line_value(0), st.total_successes() + threads + 1);
  }

  // 4. Fairness indices in range.
  EXPECT_GT(st.jain_fairness_ops(), 0.0);
  EXPECT_LE(st.jain_fairness_ops(), 1.0 + 1e-9);
  EXPECT_GE(st.min_max_ops_ratio(), 0.0);
  EXPECT_LE(st.min_max_ops_ratio(), 1.0 + 1e-9);

  // 5. Energy is positive and decomposes.
  const auto& e = st.energy;
  EXPECT_GE(e.core_active_j, 0.0);
  EXPECT_GE(e.core_spin_j, 0.0);
  EXPECT_GE(e.transfer_j, 0.0);
  EXPECT_NEAR(e.total_j(),
              e.core_active_j + e.core_spin_j + e.uncore_static_j +
                  e.transfer_j + e.directory_j + e.memory_j,
              1e-12);

  // 6. Transfers happen exactly when ownership must move.
  const auto moved = st.transfers[static_cast<int>(Supply::kNear)] +
                     st.transfers[static_cast<int>(Supply::kFar)];
  if (needs_exclusive(prim) && threads >= 2) {
    EXPECT_GT(moved, 0u);
  }
  if (prim == Primitive::kLoad) {
    // Readers share: at most the warm-up fetches move data.
    EXPECT_LE(moved, static_cast<std::uint64_t>(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MachineInvariants,
    ::testing::Combine(::testing::Values(Primitive::kLoad, Primitive::kStore,
                                         Primitive::kSwap, Primitive::kTas,
                                         Primitive::kFaa, Primitive::kCas,
                                         Primitive::kCasLoop),
                       ::testing::Values<CoreId>(1, 2, 5, 16),
                       ::testing::Values(Arbitration::kFifo,
                                         Arbitration::kProximityBiased)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_" +
             (std::get<2>(info.param) == Arbitration::kFifo ? "fifo"
                                                            : "biased");
    });

class WorkMonotonicity : public ::testing::TestWithParam<Primitive> {};

TEST_P(WorkMonotonicity, ThroughputNonIncreasingInWork) {
  const Primitive prim = GetParam();
  MachineConfig cfg = test_machine(8);
  double prev = 1e300;
  for (Cycles w : {0u, 200u, 1000u, 4000u, 16000u}) {
    Machine m(cfg, 5);
    HighContentionProgram prog(prim, w);
    const RunStats st = m.run(prog, 8, 20'000, 150'000);
    const double x = st.throughput_ops_per_kcycle();
    EXPECT_LE(x, prev * 1.02) << "w=" << w;  // 2% tolerance for granularity
    prev = x;
  }
}

// CASLOOP is deliberately absent: its *completed-op* throughput is
// non-monotone in w — backoff helps (the A1.2 ablation's whole point).
INSTANTIATE_TEST_SUITE_P(AllExclusive, WorkMonotonicity,
                         ::testing::Values(Primitive::kStore, Primitive::kSwap,
                                           Primitive::kFaa, Primitive::kTas,
                                           Primitive::kCas),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(LatencyMonotonicity, MeanLatencyNonDecreasingInThreads) {
  double prev = 0.0;
  for (CoreId n : {1u, 2u, 4u, 8u, 16u}) {
    Machine m(test_machine(16), 7);
    HighContentionProgram prog(Primitive::kFaa, 0);
    const RunStats st = m.run(prog, n, 20'000, 150'000);
    EXPECT_GE(st.mean_latency_cycles(), prev * 0.99) << "n=" << n;
    prev = st.mean_latency_cycles();
  }
}

TEST(SeedSensitivity, BiasedArbitrationVariesButBounded) {
  // Different seeds must give different grant orders but near-identical
  // aggregate throughput (the hand-off cost mixture is what matters).
  double x1 = 0.0;
  double x2 = 0.0;
  std::uint64_t ops1 = 0;
  std::uint64_t ops2 = 0;
  {
    Machine m(xeon_e5_2x18(), 1);
    HighContentionProgram prog(Primitive::kFaa, 0);
    const RunStats st = m.run(prog, 24, 20'000, 150'000);
    x1 = st.throughput_ops_per_kcycle();
    ops1 = st.threads[0].ops;
  }
  {
    Machine m(xeon_e5_2x18(), 2);
    HighContentionProgram prog(Primitive::kFaa, 0);
    const RunStats st = m.run(prog, 24, 20'000, 150'000);
    x2 = st.throughput_ops_per_kcycle();
    ops2 = st.threads[0].ops;
  }
  EXPECT_NEAR(x1, x2, x1 * 0.05);
  EXPECT_NE(ops1, ops2);  // per-core shares differ with the seed
}

}  // namespace
}  // namespace am::sim
