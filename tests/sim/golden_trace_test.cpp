// Golden-trace regression test: a fixed-seed two-core program is run on
// both paper presets and the TextTraceSink output is byte-compared against
// a checked-in golden file. Any change to event timing, arbitration order,
// or trace formatting shows up as a diff here — deliberate changes are
// re-blessed with scripts/regen_golden_traces.sh (AM_REGEN_GOLDEN=1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "conformance/generator.hpp"
#include "obs/trace.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"

#ifndef AM_GOLDEN_DIR
#define AM_GOLDEN_DIR "tests/sim/golden"
#endif

namespace am {
namespace {

constexpr std::uint64_t kSeed = 2024;

/// The fixed workload: two cores, a dozen mixed ops over two shared lines.
/// Small enough that a diff is reviewable, rich enough to cross grant,
/// invalidate and op-done paths on every preset.
conformance::GeneratedProgram golden_program() {
  conformance::GenConfig gen;
  gen.cores = 2;
  gen.ops_per_core = 12;
  gen.lines = 2;
  gen.pattern = conformance::SharingPattern::kUniform;
  gen.max_work = 8;
  return conformance::generate(kSeed, gen);
}

std::string render_trace(const sim::MachineConfig& config) {
  sim::Machine machine(config, kSeed);
  const conformance::GeneratedProgram script = golden_program();
  conformance::MultiScriptProgram program(script);
  std::ostringstream os;
  obs::TextTraceSink sink(os);
  machine.set_sink(&sink);
  machine.run(program, /*active=*/2, /*warmup=*/0, sim::Cycles{1} << 30);
  machine.set_sink(nullptr);
  return os.str();
}

void check_against_golden(const sim::MachineConfig& config,
                          const std::string& golden_name) {
  const std::string actual = render_trace(config);
  ASSERT_FALSE(actual.empty());
  const std::string path = std::string(AM_GOLDEN_DIR) + "/" + golden_name;

  if (std::getenv("AM_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    GTEST_SKIP() << "golden regenerated: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — run scripts/regen_golden_traces.sh to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "trace diverged from " << path
      << " — if the change is intentional, re-bless with "
         "scripts/regen_golden_traces.sh";
}

TEST(GoldenTrace, XeonPresetMatches) {
  check_against_golden(sim::xeon_e5_2x18(), "xeon_e5_2x18_2core.trace");
}

TEST(GoldenTrace, KnlPresetMatches) {
  check_against_golden(sim::knl_64(), "knl_64_2core.trace");
}

TEST(GoldenTrace, RenderIsDeterministic) {
  // The byte-compare above is only meaningful if rendering twice in one
  // process yields identical bytes.
  const sim::MachineConfig cfg = sim::xeon_e5_2x18();
  EXPECT_EQ(render_trace(cfg), render_trace(cfg));
}

}  // namespace
}  // namespace am
