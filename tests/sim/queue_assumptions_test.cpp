// Regression tests for the event-loop assumptions the calendar-queue
// rewrite audited: same-time FIFO dispatch, watchdog timing parity with the
// frozen seed core, and deterministic invariant reporting.
//
// The seed core leaned on two properties of its std::priority_queue that a
// replacement scheduler could silently weaken:
//   1. Events at equal times dispatch in schedule() order (the seq
//      tie-break). Grant/retry interleavings — and therefore every stat —
//      depend on it.
//   2. The watchdog counts *dispatched events* between progress marks, so
//      "when a PointTimeout fires" (kind, cycle, event count) is part of
//      observable behaviour even though timed-out runs are discarded.
// A third was a latent nondeterminism, not an assumption: the seed core's
// verify_invariants() walked an unordered_map, so with several lines
// simultaneously corrupted the *reported* line varied by hash layout. The
// fast-path core checks lines in ascending id order; the last test pins
// that.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sim/config.hpp"
#include "sim/legacy_machine.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"

namespace am::sim {
namespace {

MachineConfig tiny() { return test_machine(4, 100, 4, 200); }

/// Runs @p prog on a machine type M with the given watchdog and returns the
/// PointTimeout it must raise.
template <class M>
PointTimeout expect_timeout(const MachineConfig& cfg, WatchdogConfig wd,
                            ThreadProgram& prog) {
  M m(cfg, 1);
  m.set_watchdog(wd);
  try {
    m.run(prog, 4, 1'000, 10'000);
  } catch (const PointTimeout& e) {
    return e;
  }
  throw std::logic_error("expected PointTimeout");
}

TEST(QueueAssumptions, CycleBudgetTimeoutMatchesLegacy) {
  // The budget check runs after each pop, so *which* event first carries
  // now_ past the budget — and how many events were dispatched by then —
  // depends entirely on dispatch order. Equal fields here mean the calendar
  // queue dispatches the same event stream as the seed scheduler right up
  // to the abort.
  const WatchdogConfig wd{/*max_cycles=*/50, /*progress_events=*/0};
  HighContentionProgram prog(Primitive::kFaa, 0, 0, 0.0);
  const PointTimeout fresh = expect_timeout<Machine>(tiny(), wd, prog);
  const PointTimeout seed = expect_timeout<legacy::Machine>(tiny(), wd, prog);
  EXPECT_EQ(fresh.kind, PointTimeout::Kind::kCycleBudget);
  EXPECT_EQ(fresh.kind, seed.kind);
  EXPECT_EQ(fresh.at_cycle, seed.at_cycle);
  EXPECT_EQ(fresh.events_processed, seed.events_processed);
}

TEST(QueueAssumptions, NoProgressTimeoutMatchesLegacy) {
  // progress_events=1 trips on the very first dispatched event (a fetch,
  // which must NOT count as progress — only grants and retirements do).
  const WatchdogConfig wd{/*max_cycles=*/0, /*progress_events=*/1};
  HighContentionProgram prog(Primitive::kFaa, 0, 0, 0.0);
  const PointTimeout fresh = expect_timeout<Machine>(tiny(), wd, prog);
  const PointTimeout seed = expect_timeout<legacy::Machine>(tiny(), wd, prog);
  EXPECT_EQ(fresh.kind, PointTimeout::Kind::kNoProgress);
  EXPECT_EQ(fresh.kind, seed.kind);
  EXPECT_EQ(fresh.at_cycle, seed.at_cycle);
  EXPECT_EQ(fresh.events_processed, seed.events_processed);
}

TEST(QueueAssumptions, SameTimeBurstIsFifoAcrossCores) {
  // work=0 puts every core's fetch, issue and (for local hits) done events
  // at shared timestamps all run long; any tie-break deviation reshuffles
  // grants and shows up in per-core ops/attempts immediately.
  HighContentionProgram prog(Primitive::kFaa, 0, 0, 0.0);
  Machine fresh(tiny(), 11);
  legacy::Machine seed(tiny(), 11);
  const RunStats a = fresh.run(prog, 4, 0, 4'000);
  HighContentionProgram prog2(Primitive::kFaa, 0, 0, 0.0);
  const RunStats b = seed.run(prog2, 4, 0, 4'000);
  ASSERT_EQ(a.threads.size(), b.threads.size());
  for (std::size_t i = 0; i < a.threads.size(); ++i) {
    EXPECT_EQ(a.threads[i].ops, b.threads[i].ops) << "core " << i;
    EXPECT_EQ(a.threads[i].attempts, b.threads[i].attempts) << "core " << i;
    EXPECT_EQ(a.threads[i].wait_cycles, b.threads[i].wait_cycles) << "core " << i;
  }
  EXPECT_EQ(a.invalidations, b.invalidations);
}

TEST(QueueAssumptions, RepeatRunsAreIdentical) {
  // Determinism of the new scheduler end-to-end: same seed, same program,
  // same machine type -> identical per-core tallies.
  auto digest = [] {
    Machine m(tiny(), 3);
    HighContentionProgram prog(Primitive::kCasLoop, 0, 0, 0.0);
    const RunStats rs = m.run(prog, 4, 500, 5'000);
    std::string out;
    for (const ThreadStats& t : rs.threads) {
      out += std::to_string(t.ops) + ':' + std::to_string(t.attempts) + ':' +
             std::to_string(t.wait_cycles) + ';';
    }
    return out;
  };
  EXPECT_EQ(digest(), digest());
}

TEST(QueueAssumptions, InvariantReportNamesLowestLine) {
  // Corrupt two lines with the kSkipSharedInvalidate fault (an S->M upgrade
  // that leaves the other sharer's copy alive) and check the report is
  // stable: the fast-path core scans lines in ascending id order, so the
  // lower line id is always the one named.
  MachineConfig cfg = tiny();
  cfg.fault = FaultInjection::kSkipSharedInvalidate;
  Machine m(cfg, 1);

  // Core 1 reads both lines (sole reader -> E)...
  {
    IssueRequest load5;
    load5.prim = Primitive::kLoad;
    load5.line = 5;
    IssueRequest load9 = load5;
    load9.line = 9;
    ScriptProgram reader(1, {load5, load9});
    m.run(reader, 2, 0, Cycles{1} << 30);
  }
  // ...then core 0 reads each line (E -> S+S) and upgrades it with FAA; the
  // fault leaves core 1's shared copy next to core 0's ownership.
  {
    IssueRequest load5;
    load5.prim = Primitive::kLoad;
    load5.line = 5;
    IssueRequest faa5;
    faa5.prim = Primitive::kFaa;
    faa5.line = 5;
    IssueRequest load9 = load5;
    load9.line = 9;
    IssueRequest faa9 = faa5;
    faa9.line = 9;
    ScriptProgram writer(0, {load5, faa5, load9, faa9});
    m.run(writer, 2, 0, Cycles{1} << 30);
  }

  ASSERT_EQ(m.line_state(5, 1), Mesi::kShared) << "fault did not arm";
  ASSERT_EQ(m.line_state(9, 1), Mesi::kShared) << "fault did not arm";
  try {
    m.verify_invariants();
    FAIL() << "two corrupted lines passed verify_invariants";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos)
        << "expected the lowest corrupted line (5) to be reported, got: "
        << e.what();
  }
}

}  // namespace
}  // namespace am::sim
