#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "common/json.hpp"
#include "obs/trace.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"

namespace am::sim {
namespace {

/// Records every structured event plus the run bracketing calls.
struct CollectSink final : obs::TraceSink {
  std::vector<obs::TraceEvent> events;
  int begins = 0;
  int ends = 0;
  obs::TraceRunInfo last_info;

  void on_run_begin(const obs::TraceRunInfo& info) override {
    ++begins;
    last_info = info;
  }
  void on_event(const obs::TraceEvent& e) override { events.push_back(e); }
  void on_run_end() override { ++ends; }
};

TEST(Trace, EmitsGrantAndDoneLines) {
  Machine m(test_machine(2));
  std::ostringstream trace;
  m.set_trace(&trace);
  HighContentionProgram prog(Primitive::kFaa, 0);
  m.run(prog, 2, 0, 2'000);
  const std::string out = trace.str();
  EXPECT_NE(out.find("grant line=0"), std::string::npos);
  EXPECT_NE(out.find("done  core0 FAA line=0 ok=1"), std::string::npos);
  EXPECT_NE(out.find("done  core1 FAA"), std::string::npos);
  EXPECT_NE(out.find("near"), std::string::npos);  // a transfer happened
}

TEST(Trace, DisabledByDefaultAndDetachable) {
  Machine m(test_machine(2));
  std::ostringstream trace;
  m.set_trace(&trace);
  m.set_trace(nullptr);
  HighContentionProgram prog(Primitive::kFaa, 0);
  m.run(prog, 2, 0, 2'000);
  EXPECT_TRUE(trace.str().empty());
}

TEST(Trace, ValuesInTraceAreMonotoneForFaa) {
  Machine m(test_machine(1));
  std::ostringstream trace;
  m.set_trace(&trace);
  HighContentionProgram prog(Primitive::kFaa, 0);
  m.run(prog, 1, 0, 1'000);
  // Each "done ... val=k" line increments k.
  std::istringstream in(trace.str());
  std::string line;
  long prev = 0;
  while (std::getline(in, line)) {
    const auto pos = line.find("val=");
    if (pos == std::string::npos) continue;
    const long v = std::strtol(line.c_str() + pos + 4, nullptr, 10);
    EXPECT_EQ(v, prev + 1);
    prev = v;
  }
  EXPECT_GT(prev, 10);
}

TEST(StructuredTrace, BracketsRunsAndOrdersEvents) {
  Machine m(test_machine(2));
  CollectSink sink;
  m.set_sink(&sink);
  HighContentionProgram prog(Primitive::kFaa, 0);
  m.run(prog, 2, 0, 2'000);
  EXPECT_EQ(sink.begins, 1);
  EXPECT_EQ(sink.ends, 1);
  EXPECT_EQ(sink.last_info.active_cores, 2u);
  EXPECT_EQ(sink.last_info.measure_cycles, 2'000u);
  ASSERT_FALSE(sink.events.empty());
  // Event times never go backwards: the machine emits in simulation order.
  std::uint64_t prev = 0;
  for (const auto& e : sink.events) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

TEST(StructuredTrace, EveryRequestIssuesThenGrantsThenCompletes) {
  Machine m(test_machine(4));
  CollectSink sink;
  m.set_sink(&sink);
  HighContentionProgram prog(Primitive::kCasLoop, 0);
  m.run(prog, 4, 0, 3'000);

  // A request id is born at issue (or CAS retry) and served by exactly one
  // grant; completed ops reference a previously granted id. This is the
  // pairing the Chrome sink turns into flow arrows.
  std::map<std::uint64_t, std::uint64_t> requested;  // req_id -> time
  std::map<std::uint64_t, std::uint64_t> granted;
  std::set<std::uint64_t> done;
  for (const auto& e : sink.events) {
    switch (e.kind) {
      case obs::TraceEventKind::kIssue:
      case obs::TraceEventKind::kRetry:
        EXPECT_TRUE(requested.emplace(e.req_id, e.time).second)
            << "request id reused: " << e.req_id;
        break;
      case obs::TraceEventKind::kGrant: {
        const auto it = requested.find(e.req_id);
        ASSERT_NE(it, requested.end()) << "grant without issue: " << e.req_id;
        EXPECT_GE(e.time, it->second);
        EXPECT_TRUE(granted.emplace(e.req_id, e.time).second)
            << "request granted twice: " << e.req_id;
        break;
      }
      case obs::TraceEventKind::kOpDone: {
        const auto it = granted.find(e.req_id);
        ASSERT_NE(it, granted.end()) << "done without grant: " << e.req_id;
        EXPECT_GE(e.time, it->second);
        done.insert(e.req_id);
        break;
      }
      default:
        break;
    }
  }
  EXPECT_GT(done.size(), 10u);
  // CASLOOP on 4 cores retries, so there are more requests than ops.
  EXPECT_GT(requested.size(), done.size());
}

TEST(StructuredTrace, ChromeSinkEmitsValidTraceEvents) {
  std::ostringstream out;
  {
    Machine m(test_machine(2));
    obs::ChromeTraceSink chrome(out);
    m.set_sink(&chrome);
    HighContentionProgram prog(Primitive::kFaa, 0);
    m.run(prog, 2, 0, 2'000);
    chrome.finish();
  }
  std::string error;
  const auto doc = JsonValue::parse(out.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_EQ(doc->type(), JsonValue::Type::kArray);
  ASSERT_GT(doc->size(), 0u);

  std::size_t complete = 0, flow_s = 0, flow_f = 0;
  for (const auto& e : doc->items()) {
    ASSERT_EQ(e.type(), JsonValue::Type::kObject);
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ph"), nullptr);
    const std::string& ph = e.find("ph")->as_string();
    if (ph == "M") continue;  // metadata carries pid + args only
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    if (ph == "X") {
      ++complete;
      ASSERT_NE(e.find("dur"), nullptr);
      EXPECT_GE(e.find("dur")->as_number(), 1.0);
    } else if (ph == "s") {
      ++flow_s;
      ASSERT_NE(e.find("id"), nullptr);
    } else if (ph == "f") {
      ++flow_f;
      ASSERT_NE(e.find("id"), nullptr);
    }
  }
  EXPECT_GT(complete, 0u);
  EXPECT_GT(flow_s, 0u);
  EXPECT_EQ(flow_s, flow_f);  // every request arrow lands on a grant
}

TEST(StructuredTrace, LineProfilerFindsTheHotLine) {
  Machine m(test_machine(4));
  m.set_line_profiling(true);
  HighContentionProgram prog(Primitive::kFaa, 0);
  const RunStats stats = m.run(prog, 4, 500, 4'000);
  ASSERT_FALSE(stats.line_profiles.empty());
  const LineProfile& hot = stats.line_profiles.front();
  EXPECT_EQ(hot.line, 0u);  // high contention hammers line 0
  EXPECT_GT(hot.acquisitions, 0u);
  EXPECT_GE(hot.accesses, hot.acquisitions);
  EXPECT_GT(hot.invalidations, 0u);  // 4 cores bounce the line
  EXPECT_GT(hot.mean_queue_depth(), 0.0);
  EXPECT_GE(hot.queue_depth_max, 1u);
  EXPECT_GT(hot.mean_hold_cycles(), 0.0);
  std::uint64_t supplied = 0;
  for (const auto s : hot.supply) supplied += s;
  EXPECT_EQ(supplied, hot.accesses);  // every access has a supply class
}

TEST(StructuredTrace, EpochSamplerCoversTheMeasureWindow) {
  Machine m(test_machine(4));
  m.set_epoch_cycles(500);
  HighContentionProgram prog(Primitive::kFaa, 0);
  const RunStats stats = m.run(prog, 4, 0, 2'000);
  EXPECT_EQ(stats.epoch_cycles, 500u);
  ASSERT_EQ(stats.epochs.size(), 4u);
  std::uint64_t ops = 0;
  for (std::size_t i = 0; i < stats.epochs.size(); ++i) {
    EXPECT_EQ(stats.epochs[i].start, i * 500u);
    ops += stats.epochs[i].ops;
  }
  EXPECT_EQ(ops, stats.total_ops());
  // Under saturation every epoch does work.
  for (const auto& e : stats.epochs) {
    EXPECT_GT(e.ops, 0u);
    EXPECT_GT(e.attempts, 0u);
    EXPECT_GE(e.outstanding_max, 1u);
  }
}

}  // namespace
}  // namespace am::sim
