#include <gtest/gtest.h>

#include <sstream>

#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"

namespace am::sim {
namespace {

TEST(Trace, EmitsGrantAndDoneLines) {
  Machine m(test_machine(2));
  std::ostringstream trace;
  m.set_trace(&trace);
  HighContentionProgram prog(Primitive::kFaa, 0);
  m.run(prog, 2, 0, 2'000);
  const std::string out = trace.str();
  EXPECT_NE(out.find("grant line=0"), std::string::npos);
  EXPECT_NE(out.find("done  core0 FAA line=0 ok=1"), std::string::npos);
  EXPECT_NE(out.find("done  core1 FAA"), std::string::npos);
  EXPECT_NE(out.find("near"), std::string::npos);  // a transfer happened
}

TEST(Trace, DisabledByDefaultAndDetachable) {
  Machine m(test_machine(2));
  std::ostringstream trace;
  m.set_trace(&trace);
  m.set_trace(nullptr);
  HighContentionProgram prog(Primitive::kFaa, 0);
  m.run(prog, 2, 0, 2'000);
  EXPECT_TRUE(trace.str().empty());
}

TEST(Trace, ValuesInTraceAreMonotoneForFaa) {
  Machine m(test_machine(1));
  std::ostringstream trace;
  m.set_trace(&trace);
  HighContentionProgram prog(Primitive::kFaa, 0);
  m.run(prog, 1, 0, 1'000);
  // Each "done ... val=k" line increments k.
  std::istringstream in(trace.str());
  std::string line;
  long prev = 0;
  while (std::getline(in, line)) {
    const auto pos = line.find("val=");
    if (pos == std::string::npos) continue;
    const long v = std::strtol(line.c_str() + pos + 4, nullptr, 10);
    EXPECT_EQ(v, prev + 1);
    prev = v;
  }
  EXPECT_GT(prev, 10);
}

}  // namespace
}  // namespace am::sim
