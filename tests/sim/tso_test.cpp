// Unit tests of the TSO simulation mode: store-buffer forwarding and drain
// accounting, fence semantics and costs, config plumbing (fingerprint,
// parsing), and the guarantee that SC configurations are untouched by the
// new machinery (fields stay zero, fingerprints stay byte-identical).
#include <gtest/gtest.h>

#include <stdexcept>

#include "conformance/generator.hpp"
#include "sim/config.hpp"
#include "sim/legacy_machine.hpp"
#include "sim/machine.hpp"

namespace am::sim {
namespace {

constexpr Cycles kWindow = Cycles{1} << 40;

IssueRequest store(LineId line, std::uint64_t v) {
  IssueRequest r;
  r.prim = Primitive::kStore;
  r.line = line;
  r.store_value = v;
  return r;
}

IssueRequest load(LineId line) {
  IssueRequest r;
  r.prim = Primitive::kLoad;
  r.line = line;
  return r;
}

IssueRequest fence() {
  IssueRequest r;
  r.prim = Primitive::kFence;
  return r;
}

RunStats run_ops(const MachineConfig& cfg,
                 conformance::GeneratedProgram program,
                 std::vector<std::vector<OpResult>>* results = nullptr) {
  Machine machine(cfg, /*seed=*/1);
  conformance::MultiScriptProgram script(program);
  const RunStats stats =
      machine.run(script, program.cores(), /*warmup=*/0, kWindow);
  if (results != nullptr) *results = script.results();
  return stats;
}

TEST(MemoryModelConfig, ParseAndPrint) {
  EXPECT_STREQ(to_string(MemoryModel::kSc), "sc");
  EXPECT_STREQ(to_string(MemoryModel::kTso), "tso");
  EXPECT_EQ(parse_memory_model("sc"), MemoryModel::kSc);
  EXPECT_EQ(parse_memory_model("tso"), MemoryModel::kTso);
  EXPECT_EQ(parse_memory_model("x86-tso"), MemoryModel::kTso);
  EXPECT_FALSE(parse_memory_model("weak").has_value());
}

TEST(MemoryModelConfig, ScFingerprintHasNoTsoSection) {
  // Byte-identity anchor: default (SC) fingerprints — the keys of golden
  // digests, sweep caches and service caches — must not change because the
  // TSO fields exist.
  for (const auto& cfg : {test_machine(4), xeon_e5_2x18(), knl_64()}) {
    EXPECT_EQ(cfg.memory_model, MemoryModel::kSc);
    EXPECT_EQ(cfg.fingerprint().find(";mm="), std::string::npos)
        << cfg.fingerprint();
  }
}

TEST(MemoryModelConfig, TsoFingerprintPinsModelFenceAndBufferDepth) {
  MachineConfig cfg = test_machine(4);
  const std::string sc_fp = cfg.fingerprint();
  cfg.memory_model = MemoryModel::kTso;
  const std::string tso_fp = cfg.fingerprint();
  EXPECT_NE(sc_fp, tso_fp);
  EXPECT_NE(tso_fp.find(";mm=1"), std::string::npos) << tso_fp;
  EXPECT_NE(tso_fp.find(";fence="), std::string::npos);
  EXPECT_NE(tso_fp.find(";sb="), std::string::npos);
  // Each TSO knob must move the fingerprint: a sweep cache keyed on it can
  // never serve one model's rows to another configuration.
  MachineConfig deeper = cfg;
  deeper.store_buffer_entries = 16;
  EXPECT_NE(deeper.fingerprint(), tso_fp);
  MachineConfig pricier = cfg;
  pricier.fence_cost = 99;
  EXPECT_NE(pricier.fingerprint(), tso_fp);
  MachineConfig joules = cfg;
  joules.energy.fence_nj = 7.5;
  EXPECT_NE(joules.fingerprint(), tso_fp);
}

TEST(MemoryModelConfig, ExecCostOfFenceUsesFenceCost) {
  MachineConfig cfg = test_machine(2);
  cfg.fence_cost = 57;
  EXPECT_EQ(cfg.exec_cost_of(Primitive::kFence), 57u);
  EXPECT_EQ(cfg.exec_cost_of(Primitive::kLoad),
            cfg.exec_cost[static_cast<std::size_t>(Primitive::kLoad)]);
}

TEST(Tso, StoreForwardingAndDrainAccounting) {
  // One core: STORE 5; STORE 9; LOAD — the load must forward the *newest*
  // buffered store, both stores must eventually drain, and the drained
  // value must reach the directory.
  conformance::GeneratedProgram p;
  p.per_core = {{store(0, 5), store(0, 9), load(0)}};

  MachineConfig cfg = test_machine(2);
  cfg.memory_model = MemoryModel::kTso;
  Machine machine(cfg, 1);
  conformance::MultiScriptProgram script(p);
  const RunStats stats = machine.run(script, 1, 0, kWindow);

  ASSERT_EQ(script.results()[0].size(), 3u);
  EXPECT_EQ(script.results()[0][2].observed, 9u);
  EXPECT_EQ(stats.store_buffer_drains, 2u);
  EXPECT_EQ(stats.fences, 0u);
  EXPECT_EQ(machine.line_value(0), 9u);
  EXPECT_EQ(machine.store_buffer_depth(0), 0u);  // fully drained at the end
}

TEST(Tso, FenceDrainsAndIsAccounted) {
  conformance::GeneratedProgram p;
  p.per_core = {{store(0, 7), fence(), load(0)}};
  MachineConfig cfg = test_machine(2);
  cfg.memory_model = MemoryModel::kTso;
  const RunStats stats = run_ops(cfg, p);
  EXPECT_EQ(stats.fences, 1u);
  EXPECT_EQ(stats.store_buffer_drains, 1u);
  EXPECT_GT(stats.energy.fence_j, 0.0);
}

TEST(Tso, FenceCostIsPaid) {
  // The same program with a pricier fence must take at least the cost
  // difference longer.
  conformance::GeneratedProgram p;
  p.per_core = {{fence(), fence(), fence(), fence()}};
  MachineConfig cheap = test_machine(2);
  cheap.memory_model = MemoryModel::kTso;
  cheap.fence_cost = 1;
  MachineConfig dear = cheap;
  dear.fence_cost = 1001;
  const RunStats fast = run_ops(cheap, p);
  const RunStats slow = run_ops(dear, p);
  EXPECT_GE(slow.threads[0].exec_cycles, fast.threads[0].exec_cycles + 4000u);
}

TEST(Tso, FullStoreBufferForcesMidStreamDrain) {
  MachineConfig cfg = test_machine(2);
  cfg.memory_model = MemoryModel::kTso;
  cfg.store_buffer_entries = 2;
  conformance::GeneratedProgram p;
  p.per_core.resize(1);
  for (std::uint64_t i = 0; i < 7; ++i) {
    p.per_core[0].push_back(store(static_cast<LineId>(i), i + 1));
  }
  Machine machine(cfg, 1);
  conformance::MultiScriptProgram script(p);
  const RunStats stats = machine.run(script, 1, 0, kWindow);
  EXPECT_EQ(stats.store_buffer_drains, 7u);
  for (std::uint64_t i = 0; i < 7; ++i) {
    EXPECT_EQ(machine.line_value(static_cast<LineId>(i)), i + 1);
  }
}

TEST(Tso, RmwDrainsTheBufferFirst) {
  // A buffered store to the same line must be globally visible before an
  // atomic RMW executes: FAA after STORE 10 must observe 10.
  conformance::GeneratedProgram p;
  IssueRequest faa;
  faa.prim = Primitive::kFaa;
  faa.line = 0;
  p.per_core = {{store(0, 10), faa}};
  MachineConfig cfg = test_machine(2);
  cfg.memory_model = MemoryModel::kTso;
  std::vector<std::vector<OpResult>> results;
  const RunStats stats = run_ops(cfg, p, &results);
  ASSERT_EQ(results[0].size(), 2u);
  EXPECT_EQ(results[0][1].observed, 10u);
  EXPECT_EQ(stats.store_buffer_drains, 1u);
}

TEST(Tso, ScRunsKeepTsoCountersAtZero) {
  conformance::GenConfig gen;
  gen.cores = 2;
  gen.ops_per_core = 24;
  const conformance::GeneratedProgram p = conformance::generate(3, gen);
  const RunStats stats = run_ops(test_machine(2), p);
  EXPECT_EQ(stats.store_buffer_drains, 0u);
  EXPECT_EQ(stats.fences, 0u);
  EXPECT_EQ(stats.energy.fence_j, 0.0);
}

TEST(Tso, LegacyMachineRejectsTso) {
  MachineConfig cfg = test_machine(2);
  cfg.memory_model = MemoryModel::kTso;
  EXPECT_THROW(legacy::Machine m(cfg, 1), std::invalid_argument);
}

}  // namespace
}  // namespace am::sim
