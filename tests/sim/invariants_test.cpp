// Randomized MESI invariant checking.
//
// Drives both studied presets with randomized programs while a trace sink
// re-verifies the protocol invariants after *every* emitted step (not just
// the per-grant paranoid check): at most one E/M owner per line, Shared
// copies exclude any owner, sharer lists are duplicate-free sets of valid
// cores. A second, machine-external pass cross-checks the directory view
// (snapshot_line) against the per-core view (line_state). Every iteration
// prints its seed on failure so a violation replays with a one-line repro.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <memory>
#include <random>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/trace.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"

namespace am::sim {
namespace {

// Re-runs the full-machine invariant sweep after every protocol step.
class InvariantCheckingSink final : public obs::TraceSink {
 public:
  explicit InvariantCheckingSink(const Machine& m) : machine_(m) {}

  void on_event(const obs::TraceEvent&) override {
    ++events_;
    machine_.verify_invariants();  // throws std::logic_error on violation
  }

  std::uint64_t events() const noexcept { return events_; }

 private:
  const Machine& machine_;
  std::uint64_t events_ = 0;
};

// Directory state and per-core state must tell the same story for every
// touched line; this re-derives the invariants from the public API only.
void check_external_consistency(const Machine& m) {
  const CoreId cores = m.core_count();
  for (const LineId id : m.touched_lines()) {
    const Machine::LineSnapshot snap = m.snapshot_line(id);

    std::vector<CoreId> owners;
    std::vector<CoreId> sharers;
    for (CoreId c = 0; c < cores; ++c) {
      switch (m.line_state(id, c)) {
        case Mesi::kModified:
        case Mesi::kExclusive: owners.push_back(c); break;
        case Mesi::kShared: sharers.push_back(c); break;
        case Mesi::kInvalid: break;
      }
    }

    ASSERT_LE(owners.size(), 1u) << "line " << id << ": multiple E/M owners";
    if (!owners.empty()) {
      EXPECT_TRUE(sharers.empty())
          << "line " << id << ": Shared copy coexists with an E/M owner";
      EXPECT_EQ(owners[0], snap.owner)
          << "line " << id << ": directory owner disagrees with cache state";
      EXPECT_EQ(m.line_state(id, owners[0]), snap.owner_state);
    } else {
      EXPECT_EQ(snap.owner, kNoCore)
          << "line " << id << ": directory records an owner no cache holds";
    }
    std::vector<CoreId> dir_sharers = snap.sharers;  // set equality: the
    std::sort(dir_sharers.begin(), dir_sharers.end());  // list is unordered
    EXPECT_EQ(sharers, dir_sharers)
        << "line " << id << ": directory sharer list disagrees with caches";
  }
}

std::unique_ptr<ThreadProgram> random_program(std::mt19937_64& rng,
                                              std::string* desc) {
  const Primitive prims[] = {Primitive::kFaa,  Primitive::kCas,
                             Primitive::kCasLoop, Primitive::kSwap,
                             Primitive::kTas,  Primitive::kLoad,
                             Primitive::kStore};
  const Primitive prim = prims[rng() % std::size(prims)];
  const Cycles work = rng() % 40;
  std::ostringstream os;
  switch (rng() % 4) {
    case 0:
      os << "high-contention prim=" << static_cast<int>(prim) << " work="
         << work;
      *desc = os.str();
      return std::make_unique<HighContentionProgram>(prim, work);
    case 1: {
      const std::size_t lines = 2 + rng() % 30;
      const double s = static_cast<double>(rng() % 200) / 100.0;
      os << "zipf prim=" << static_cast<int>(prim) << " lines=" << lines
         << " s=" << s;
      *desc = os.str();
      return std::make_unique<ZipfSharingProgram>(prim, work, lines, s);
    }
    case 2: {
      const double wf = static_cast<double>(rng() % 100) / 100.0;
      os << "mixed-rw wf=" << wf << " work=" << work;
      *desc = os.str();
      return std::make_unique<MixedReadWriteProgram>(Primitive::kCasLoop, wf,
                                                     work);
    }
    default: {
      const std::uint32_t group = 1 + static_cast<std::uint32_t>(rng() % 8);
      os << "sharded prim=" << static_cast<int>(prim) << " group=" << group;
      *desc = os.str();
      return std::make_unique<ShardedProgram>(prim, work, group);
    }
  }
}

void run_randomized(const std::string& preset, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  MachineConfig cfg = preset_by_name(preset);
  cfg.paranoid_checks = true;  // per-grant checks in addition to the sink's

  Machine machine(cfg, seed);
  InvariantCheckingSink sink(machine);
  machine.set_sink(&sink);

  std::string desc;
  auto program = random_program(rng, &desc);
  const CoreId active =
      2 + static_cast<CoreId>(rng() % (machine.core_count() - 1));
  SCOPED_TRACE("replay: preset=" + preset + " seed=" + std::to_string(seed) +
               " program{" + desc + "} cores=" + std::to_string(active));

  RunStats stats;
  try {
    stats = machine.run(*program, active, /*warmup=*/500, /*measure=*/4'000);
  } catch (const std::logic_error& e) {
    FAIL() << "invariant violated: " << e.what() << " [preset=" << preset
           << " seed=" << seed << " program{" << desc << "}]";
  }

  EXPECT_GT(sink.events(), 0u) << "sink saw no protocol steps";
  EXPECT_GT(stats.total_ops(), 0u);
  check_external_consistency(machine);
}

TEST(MesiInvariants, RandomizedProgramsOnXeonPreset) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    run_randomized("xeon", seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MesiInvariants, RandomizedProgramsOnKnlPreset) {
  for (std::uint64_t seed = 101; seed <= 110; ++seed) {
    run_randomized("knl", seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// prime_line replaces the whole line record (it cannot stack states into an
// illegal mix), so re-priming S on core 0 with M on core 1 must leave core 0
// Invalid, the checker green, and the directory snapshot consistent.
TEST(MesiInvariants, PrimeLineReplacesStateAndStaysConsistent) {
  MachineConfig cfg = preset_by_name("test");
  Machine machine(cfg, 1);
  machine.prime_line(7, Mesi::kShared, 0, 11);
  machine.prime_line(7, Mesi::kModified, 1, 22);

  EXPECT_EQ(machine.line_state(7, 0), Mesi::kInvalid);
  EXPECT_EQ(machine.line_state(7, 1), Mesi::kModified);
  EXPECT_EQ(machine.line_value(7), 22u);
  EXPECT_NO_THROW(machine.verify_invariants());

  const Machine::LineSnapshot snap = machine.snapshot_line(7);
  EXPECT_EQ(snap.owner, 1u);
  EXPECT_EQ(snap.owner_state, Mesi::kModified);
  EXPECT_TRUE(snap.sharers.empty());
  EXPECT_FALSE(snap.busy);
  EXPECT_EQ(snap.queued, 0u);
  EXPECT_EQ(std::vector<LineId>{7}, machine.touched_lines());
  check_external_consistency(machine);
}

}  // namespace
}  // namespace am::sim
