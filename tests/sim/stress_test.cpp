// Randomized protocol stress: random op streams over random machines with
// the MESI invariant checker armed. Any single-writer violation, duplicate
// sharer, duplicate request, or value divergence aborts the run.
#include <gtest/gtest.h>

#include <map>

#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"

namespace am::sim {
namespace {

/// Fully random program: every op picks a random primitive, a random line
/// from a small pool (maximising aliasing), random work, and occasionally
/// random store values — the nastiest stream the protocol will ever see.
class ChaosProgram final : public ThreadProgram {
 public:
  ChaosProgram(std::size_t lines, Cycles max_work)
      : lines_(lines), max_work_(max_work) {}

  std::optional<IssueRequest> next_op(CoreId, Xoshiro256& rng) override {
    IssueRequest r;
    r.prim = kAllPrimitives[rng.next_below(std::size(kAllPrimitives))];
    r.line = rng.next_below(lines_);
    r.work_before = rng.next_below(max_work_ + 1);
    if (rng.next_below(4) == 0) r.store_value = rng.next_below(100);
    return r;
  }

 private:
  std::size_t lines_;
  Cycles max_work_;
};

class ProtocolStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolStress, RandomStreamsKeepInvariants) {
  const std::uint64_t seed = GetParam();
  // Vary the machine shape with the seed.
  MachineConfig cfg;
  switch (seed % 4) {
    case 0: cfg = test_machine(8); break;
    case 1: cfg = xeon_e5_2x18(); break;
    case 2: cfg = knl_64(); break;
    default:
      cfg = test_machine(5, 37, 3, 111);
      cfg.arbitration = Arbitration::kNearestFirst;
      break;
  }
  cfg.paranoid_checks = true;
  cfg.cache_capacity_lines = 4;  // force heavy eviction traffic too

  Machine m(cfg, seed);
  ChaosProgram prog(6, 60);
  const CoreId threads =
      static_cast<CoreId>(2 + seed % (cfg.core_count() - 1));
  RunStats st;
  ASSERT_NO_THROW(st = m.run(prog, threads, 0, 60'000)) << "seed " << seed;
  EXPECT_GT(st.total_ops(), 0u);

  // Value sanity: every line's final value is reachable by the primitives
  // (bounded by total ops, since each op changes a value by at most setting
  // it to <100 or incrementing).
  for (LineId line = 0; line < 6; ++line) {
    EXPECT_LT(m.line_value(line), st.total_ops() + 100 + threads);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolStress,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(ProtocolStress, ParanoidChecksAreCheapEnoughForTests) {
  MachineConfig cfg = test_machine(8);
  cfg.paranoid_checks = true;
  Machine m(cfg);
  HighContentionProgram prog(Primitive::kFaa, 0);
  const RunStats st = m.run(prog, 8, 0, 100'000);
  EXPECT_GT(st.total_ops(), 500u);
}

TEST(ProtocolStress, CheckerCatchesCorruptedState) {
  // prime_line with sharers, then prime an owner without clearing — the
  // public API prevents this, so corrupt via a hostile sequence instead:
  // verify the checker logic by constructing the violation directly is not
  // possible from outside; assert instead that legal priming passes.
  MachineConfig cfg = test_machine(4);
  cfg.paranoid_checks = true;
  Machine m(cfg);
  m.prime_line(0, Mesi::kModified, 1, 7);
  HighContentionProgram prog(Primitive::kFaa, 0);
  EXPECT_NO_THROW(m.run(prog, 4, 0, 10'000));
}

}  // namespace
}  // namespace am::sim
