// Property tests for the calendar-queue scheduler: randomized workloads are
// run against a std::priority_queue reference with the same (time, seq)
// comparator the seed core used. The byte-identity of the fast-path core
// rests on the two schedulers agreeing on every pop, so the generators here
// deliberately hit the calendar queue's structural edges: same-timestamp
// FIFO bursts, year rollover (times far beyond nbuckets * width), cursor
// rewind (pushing earlier than the last pop), and grow/shrink resizes
// mid-stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/random.hpp"
#include "sim/event_queue.hpp"

namespace am::sim {
namespace {

struct RefEntry {
  Cycles time;
  std::uint64_t seq;
  std::uint32_t payload;
  bool operator>(const RefEntry& o) const noexcept {
    return time != o.time ? time > o.time : seq > o.seq;
  }
};

using RefQueue =
    std::priority_queue<RefEntry, std::vector<RefEntry>, std::greater<>>;

/// Drives both queues through the same push/pop schedule and asserts every
/// popped (time, seq, payload) triple matches.
class DualQueue {
 public:
  void push(Cycles time, std::uint32_t payload) {
    cq_.push(time, seq_, payload);
    ref_.push(RefEntry{time, seq_, payload});
    ++seq_;
  }

  void pop_and_check() {
    ASSERT_FALSE(ref_.empty());
    ASSERT_FALSE(cq_.empty());
    const RefEntry want = ref_.top();
    ref_.pop();
    const SchedEntry got = cq_.pop();
    ASSERT_EQ(got.time, want.time);
    ASSERT_EQ(got.seq, want.seq);
    ASSERT_EQ(got.payload, want.payload);
    ASSERT_EQ(cq_.size(), ref_.size());
  }

  void drain_and_check() {
    while (!ref_.empty()) pop_and_check();
    EXPECT_TRUE(cq_.empty());
  }

  std::size_t size() const { return ref_.size(); }
  CalendarQueue& calendar() { return cq_; }

 private:
  CalendarQueue cq_;
  RefQueue ref_;
  std::uint64_t seq_ = 0;
};

TEST(EventQueue, EmptyAfterConstruction) {
  CalendarQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, SameTimestampIsFifo) {
  DualQueue dq;
  for (std::uint32_t i = 0; i < 100; ++i) dq.push(42, i);
  // FIFO among equal times: payloads must come back 0..99 in order.
  for (std::uint32_t i = 0; i < 100; ++i) {
    SCOPED_TRACE(i);
    dq.pop_and_check();
  }
}

TEST(EventQueue, InterleavedSameTimeBursts) {
  DualQueue dq;
  std::uint32_t p = 0;
  // Bursts at alternating times pushed out of time order.
  for (int round = 0; round < 20; ++round) {
    const Cycles t = (round % 2 == 0) ? 1000 : 500;
    for (int i = 0; i < 5; ++i) dq.push(t, p++);
  }
  dq.drain_and_check();
}

TEST(EventQueue, MonotoneStream) {
  DualQueue dq;
  Xoshiro256 rng(1);
  Cycles t = 0;
  for (std::uint32_t i = 0; i < 5000; ++i) {
    t += rng.next() % 7;  // non-decreasing, many exact ties
    dq.push(t, i);
    if (rng.next() % 3 == 0) dq.pop_and_check();
  }
  dq.drain_and_check();
}

TEST(EventQueue, RandomMixedWorkload) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(seed);
    DualQueue dq;
    Xoshiro256 rng(seed);
    std::uint32_t p = 0;
    for (int step = 0; step < 20000; ++step) {
      const bool do_push = dq.size() == 0 || rng.next() % 100 < 55;
      if (do_push) {
        // Mixed scales: mostly near-term, occasional far-future times to
        // force year rollover, occasional duplicates.
        const std::uint64_t r = rng.next() % 100;
        Cycles t;
        if (r < 70) {
          t = rng.next() % 1024;
        } else if (r < 90) {
          t = rng.next() % (1u << 20);
        } else {
          t = rng.next() % (1ull << 40);
        }
        dq.push(t, p++);
      } else {
        dq.pop_and_check();
      }
    }
    dq.drain_and_check();
  }
}

TEST(EventQueue, CursorRewindOnPastPush) {
  DualQueue dq;
  // Advance the cursor deep into time, then push earlier events — the
  // simulator does this when an in-flight transfer completes before an
  // already-scheduled far-future fetch.
  dq.push(1'000'000, 0);
  dq.pop_and_check();  // cursor now sits at the 1M window
  for (std::uint32_t i = 1; i <= 50; ++i) dq.push(i, i);
  dq.push(999'999, 51);
  dq.push(0, 52);  // earlier than everything, same-year edge
  dq.drain_and_check();
}

TEST(EventQueue, GrowAndShrinkKeepOrder) {
  DualQueue dq;
  Xoshiro256 rng(99);
  std::uint32_t p = 0;
  const std::size_t before = dq.calendar().bucket_count();
  // Flood far past the grow threshold...
  for (int i = 0; i < 4096; ++i) dq.push(rng.next() % 100000, p++);
  EXPECT_GT(dq.calendar().bucket_count(), before);
  // ...then drain past the shrink threshold, checking order throughout.
  dq.drain_and_check();
  EXPECT_EQ(dq.calendar().bucket_count(), before);
}

TEST(EventQueue, SparseFarApartTimes) {
  // Each event sits many years from the next: every pop takes the
  // global-min fallback path.
  DualQueue dq;
  Cycles t = 1;
  for (std::uint32_t i = 0; i < 64; ++i) {
    dq.push(t, i);
    t *= 3;
  }
  dq.drain_and_check();
}

TEST(EventQueue, ClearKeepsQueueUsable) {
  CalendarQueue q;
  for (std::uint32_t i = 0; i < 100; ++i) q.push(i * 10, i, i);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  // A cleared queue must order fresh pushes correctly from scratch.
  q.push(30, 0, 0);
  q.push(10, 1, 1);
  q.push(20, 2, 2);
  EXPECT_EQ(q.pop().payload, 1u);
  EXPECT_EQ(q.pop().payload, 2u);
  EXPECT_EQ(q.pop().payload, 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PayloadRoundTrips) {
  CalendarQueue q;
  q.push(5, 0, 0xdeadbeef);
  const SchedEntry e = q.pop();
  EXPECT_EQ(e.time, 5u);
  EXPECT_EQ(e.payload, 0xdeadbeefu);
}

}  // namespace
}  // namespace am::sim
