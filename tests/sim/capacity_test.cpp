// Private-cache capacity and LRU eviction.
#include <gtest/gtest.h>

#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"

namespace am::sim {
namespace {

MachineConfig capped(std::uint32_t capacity) {
  MachineConfig cfg = test_machine(2, 100, 4, 200);
  cfg.cache_capacity_lines = capacity;
  return cfg;
}

TEST(Capacity, WorkingSetWithinCapacityStaysResident) {
  Machine m(capped(8));
  PrivateWalkProgram prog(Primitive::kFaa, 0, 8);
  const RunStats st = m.run(prog, 1, 10'000, 100'000);
  // After the first pass everything hits: ~no memory fetches in the window.
  EXPECT_LE(st.memory_fetches, 1u);
  EXPECT_EQ(st.evictions, 0u);
  const double per_op = 100'000.0 / static_cast<double>(st.total_ops());
  EXPECT_NEAR(per_op, 4.0 + 10.0, 0.5);  // l1 + exec
}

TEST(Capacity, WorkingSetBeyondCapacityMissesEveryAccess) {
  Machine m(capped(8));
  PrivateWalkProgram prog(Primitive::kFaa, 0, 9);  // one line too many
  const RunStats st = m.run(prog, 1, 10'000, 100'000);
  // Cyclic walk + LRU: every access evicts the line needed furthest in the
  // future... which for LRU on a cyclic pattern means every access misses.
  EXPECT_NEAR(static_cast<double>(st.memory_fetches),
              static_cast<double>(st.total_ops()),
              static_cast<double>(st.total_ops()) * 0.05);
  EXPECT_GT(st.evictions, 100u);
  const double per_op = 100'000.0 / static_cast<double>(st.total_ops());
  EXPECT_NEAR(per_op, 200.0 + 4.0 + 10.0, 2.0);  // memory + l1 + exec
}

TEST(Capacity, EvictionCountsOnlyInWindow) {
  Machine m(capped(4));
  PrivateWalkProgram prog(Primitive::kFaa, 0, 16);
  const RunStats warm_only = m.run(prog, 1, 100'000, 0);
  EXPECT_EQ(warm_only.evictions, 0u);  // zero-length window
}

TEST(Capacity, PerCoreCachesAreIndependent) {
  Machine m(capped(8));
  PrivateWalkProgram prog(Primitive::kFaa, 0, 8);
  const RunStats st = m.run(prog, 2, 10'000, 100'000);
  // Both cores' 8-line sets fit their own caches.
  EXPECT_LE(st.memory_fetches, 2u);
  EXPECT_NEAR(static_cast<double>(st.threads[0].ops),
              static_cast<double>(st.threads[1].ops), 2.0);
}

TEST(Capacity, SharedLineSurvivesBouncingWithTinyCache) {
  // Contended workloads keep working even with a 1-line cache: the hot
  // line is always the most recently used.
  MachineConfig cfg = capped(1);
  Machine m(cfg);
  HighContentionProgram prog(Primitive::kFaa, 0);
  const RunStats st = m.run(prog, 2, 10'000, 100'000);
  EXPECT_GT(st.total_ops(), 100u);
  // All increments (warmup included) landed on the line despite evictions.
  EXPECT_GE(m.line_value(0), st.total_ops());
}

TEST(Capacity, ZeroCapacityIsClampedToOne) {
  MachineConfig cfg = capped(0);
  Machine m(cfg);
  HighContentionProgram prog(Primitive::kFaa, 0);
  const RunStats st = m.run(prog, 1, 0, 50'000);
  EXPECT_GT(st.total_ops(), 100u);
}

}  // namespace
}  // namespace am::sim
