// Property tests for the flat open-addressing tables behind the fast-path
// simulator core: random operation sequences are mirrored against a
// std::unordered_map reference, so any probe/growth/backward-shift bug shows
// up as a divergence. Key distributions deliberately include dense runs and
// same-bucket clusters — the worst cases for linear probing.
#include "sim/flat_table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.hpp"

namespace am::sim {
namespace {

TEST(FlatMap64, MatchesReferenceUnderRandomInserts) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SplitMix64 rng(seed);
    FlatMap64 map(/*initial_pow2=*/8);  // small: forces several growths
    std::unordered_map<std::uint64_t, std::uint32_t> ref;
    for (int i = 0; i < 4000; ++i) {
      // Mix of dense small keys (like LineIds) and sparse random ones.
      const std::uint64_t key = (rng.next() % 2 == 0)
                                    ? rng.next() % 512
                                    : rng.next();
      const auto v = static_cast<std::uint32_t>(rng.next());
      bool created = false;
      const std::uint32_t got = map.find_or_insert(key, v, created);
      const auto [it, inserted] = ref.emplace(key, v);
      EXPECT_EQ(created, inserted) << "key=" << key;
      EXPECT_EQ(got, it->second) << "key=" << key;
      EXPECT_EQ(map.size(), ref.size());
    }
    // Every reference entry must be findable; absent keys must miss.
    for (const auto& [k, v] : ref) {
      EXPECT_EQ(map.find(k, ~0u), v);
    }
    for (int i = 0; i < 100; ++i) {
      std::uint64_t probe = rng.next() | (1ull << 62);
      if (ref.count(probe) == 0) {
        EXPECT_EQ(map.find(probe, 1234u), 1234u);
      }
    }
  }
}

TEST(FlatMap64, FindOrInsertIsIdempotentOnExistingKeys) {
  FlatMap64 map;
  bool created = false;
  EXPECT_EQ(map.find_or_insert(7, 42, created), 42u);
  EXPECT_TRUE(created);
  // A second insert with a different fallback must return the first value.
  EXPECT_EQ(map.find_or_insert(7, 99, created), 42u);
  EXPECT_FALSE(created);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap64, SurvivesSequentialKeysAcrossGrowth) {
  // Dense sequential keys are exactly what the machine feeds the table
  // (LineId 0..N); rehash must preserve every mapping.
  FlatMap64 map(/*initial_pow2=*/8);
  for (std::uint32_t k = 0; k < 10000; ++k) {
    bool created = false;
    map.find_or_insert(k, k * 3 + 1, created);
    ASSERT_TRUE(created);
  }
  EXPECT_EQ(map.size(), 10000u);
  for (std::uint32_t k = 0; k < 10000; ++k) {
    ASSERT_EQ(map.find(k, ~0u), k * 3 + 1) << "key=" << k;
  }
  EXPECT_EQ(map.find(10000, ~0u), ~0u);
}

TEST(FlatSlotMap, MatchesReferenceUnderChurn) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SplitMix64 rng(seed);
    FlatSlotMap map(/*initial_pow2=*/8);
    std::unordered_map<std::uint32_t, std::uint32_t> ref;
    for (int i = 0; i < 6000; ++i) {
      // Small key range so inserts, overwrites and erases all collide hard
      // on the same probe chains — the backward-shift stress case.
      const auto key = static_cast<std::uint32_t>(rng.next() % 256);
      const auto val = static_cast<std::uint32_t>(rng.next());
      switch (rng.next() % 3) {
        case 0:
        case 1:
          map.insert(key, val);
          ref[key] = val;
          break;
        default:
          map.erase(key);
          ref.erase(key);
          break;
      }
      ASSERT_EQ(map.size(), ref.size());
    }
    for (std::uint32_t k = 0; k < 256; ++k) {
      const auto it = ref.find(k);
      const std::uint32_t want = it == ref.end() ? 0xdeadu : it->second;
      ASSERT_EQ(map.find(k, 0xdeadu), want) << "key=" << k;
    }
  }
}

TEST(FlatSlotMap, EraseOfAbsentKeyIsANoop) {
  FlatSlotMap map;
  map.insert(1, 10);
  map.insert(2, 20);
  map.erase(3);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.find(1, 0), 10u);
  EXPECT_EQ(map.find(2, 0), 20u);
}

TEST(FlatSlotMap, BackwardShiftKeepsProbeChainsReachable) {
  // Fill a chain, delete from the middle, and verify every survivor is
  // still reachable — the property backward-shift deletion must preserve.
  FlatSlotMap map(/*initial_pow2=*/8);
  for (std::uint32_t k = 0; k < 6; ++k) map.insert(k, k + 100);
  map.erase(2);
  map.erase(4);
  EXPECT_EQ(map.size(), 4u);
  for (std::uint32_t k : {0u, 1u, 3u, 5u}) {
    EXPECT_EQ(map.find(k, ~0u), k + 100) << "key=" << k;
  }
  EXPECT_EQ(map.find(2, ~0u), ~0u);
  EXPECT_EQ(map.find(4, ~0u), ~0u);
  // Reinsertion after deletion lands cleanly.
  map.insert(2, 777);
  EXPECT_EQ(map.find(2, 0), 777u);
}

TEST(FlatSlotMap, OverwriteDoesNotGrowSize) {
  FlatSlotMap map;
  for (int i = 0; i < 50; ++i) map.insert(9, static_cast<std::uint32_t>(i));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.find(9, 0), 49u);
}

}  // namespace
}  // namespace am::sim
