#include <gtest/gtest.h>

#include "sim/interconnect.hpp"

namespace am::sim {
namespace {

TEST(TwoSocket, LatencyClasses) {
  TwoSocketInterconnect ic(18, 70, 180);
  EXPECT_EQ(ic.core_count(), 36u);
  EXPECT_EQ(ic.transfer_cycles(0, 0), 0u);
  EXPECT_EQ(ic.transfer_cycles(0, 17), 70u);
  EXPECT_EQ(ic.transfer_cycles(0, 18), 180u);
  EXPECT_EQ(ic.transfer_cycles(35, 18), 70u);
  EXPECT_EQ(ic.supply_class(0, 1), Supply::kNear);
  EXPECT_EQ(ic.supply_class(0, 20), Supply::kFar);
  EXPECT_EQ(ic.supply_class(3, 3), Supply::kLocalHit);
}

TEST(TwoSocket, DistanceAndHops) {
  TwoSocketInterconnect ic(4, 50, 100);
  EXPECT_EQ(ic.distance(0, 1), 1u);
  EXPECT_EQ(ic.distance(0, 5), 2u);
  EXPECT_EQ(ic.distance(2, 2), 0u);
  EXPECT_EQ(ic.hops(0, 1), 1u);
  EXPECT_EQ(ic.hops(0, 5), 3u);
}

TEST(TwoSocket, SymmetricLatency) {
  TwoSocketInterconnect ic(8, 60, 150);
  for (CoreId a = 0; a < 16; a += 3) {
    for (CoreId b = 0; b < 16; b += 5) {
      EXPECT_EQ(ic.transfer_cycles(a, b), ic.transfer_cycles(b, a));
    }
  }
}

TEST(TwoSocket, RejectsEmptySocket) {
  EXPECT_THROW(TwoSocketInterconnect(0, 1, 2), std::invalid_argument);
}

TEST(Mesh, ManhattanGeometry) {
  MeshInterconnect ic(8, 8, 150, 6, 4);
  EXPECT_EQ(ic.core_count(), 64u);
  EXPECT_EQ(ic.manhattan(0, 0), 0u);
  EXPECT_EQ(ic.manhattan(0, 7), 7u);   // same row, far column
  EXPECT_EQ(ic.manhattan(0, 63), 14u); // opposite corner
  EXPECT_EQ(ic.manhattan(9, 18), 2u);  // (1,1) -> (2,2)
  EXPECT_EQ(ic.transfer_cycles(0, 63), 150u + 6u * 14u);
}

TEST(Mesh, SupplyClassByDistance) {
  MeshInterconnect ic(8, 8, 150, 6, 4);
  EXPECT_EQ(ic.supply_class(0, 1), Supply::kNear);
  EXPECT_EQ(ic.supply_class(0, 4), Supply::kNear);   // 4 hops == near limit
  EXPECT_EQ(ic.supply_class(0, 5), Supply::kFar);    // 5 hops
  EXPECT_EQ(ic.supply_class(12, 12), Supply::kLocalHit);
}

TEST(Mesh, RejectsEmpty) {
  EXPECT_THROW(MeshInterconnect(0, 8, 1, 1, 1), std::invalid_argument);
}

TEST(Uniform, SingleClass) {
  UniformInterconnect ic(4, 100);
  EXPECT_EQ(ic.transfer_cycles(0, 3), 100u);
  EXPECT_EQ(ic.transfer_cycles(2, 2), 0u);
  EXPECT_EQ(ic.supply_class(0, 1), Supply::kNear);
  EXPECT_EQ(ic.distance(0, 1), 1u);
}

TEST(Names, EnumToString) {
  EXPECT_STREQ(to_string(Mesi::kModified), "M");
  EXPECT_STREQ(to_string(Supply::kFar), "far");
  EXPECT_STREQ(to_string(Arbitration::kFifo), "fifo");
  EXPECT_STREQ(to_string(Arbitration::kProximityBiased), "proximity-biased");
}

}  // namespace
}  // namespace am::sim
