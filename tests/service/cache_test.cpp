#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "service/lru_cache.hpp"

namespace am::service {
namespace {

TEST(LruCache, HitMissAndCounters) {
  ShardedLruCache cache(8, 1);
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", "1");
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "1");
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.insertions, 1u);
  EXPECT_EQ(c.evictions, 0u);
  EXPECT_EQ(c.entries, 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  // One shard so the LRU order is global and assertable.
  ShardedLruCache cache(2, 1);
  cache.put("a", "A");
  cache.put("b", "B");
  ASSERT_TRUE(cache.get("a").has_value());  // refresh a; b is now LRU
  cache.put("c", "C");                      // evicts b
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_EQ(cache.counters().entries, 2u);
}

TEST(LruCache, PutRefreshesExistingKey) {
  ShardedLruCache cache(2, 1);
  cache.put("a", "old");
  cache.put("b", "B");
  cache.put("a", "new");  // refresh, not insert: b stays, a moves to front
  cache.put("c", "C");    // evicts b (LRU), not a
  EXPECT_EQ(cache.get("a").value_or(""), "new");
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_EQ(cache.counters().insertions, 3u);
}

TEST(LruCache, ZeroCapacityDisables) {
  ShardedLruCache cache(0, 16);
  cache.put("a", "1");
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.counters().entries, 0u);
  EXPECT_EQ(cache.counters().insertions, 0u);
}

TEST(LruCache, ShardCountCappedByCapacity) {
  // 16 requested shards with capacity 2 must shrink so no shard has a zero
  // budget (which would evict everything it is handed).
  ShardedLruCache cache(2, 16);
  EXPECT_LE(cache.shard_count(), 2u);
  ShardedLruCache pow2(100, 5);  // rounds up to 8
  EXPECT_EQ(pow2.shard_count(), 8u);
}

TEST(LruCache, TotalCapacityHolds) {
  ShardedLruCache cache(64, 4);
  for (int i = 0; i < 1000; ++i) {
    cache.put("key-" + std::to_string(i), std::to_string(i));
  }
  const CacheCounters c = cache.counters();
  EXPECT_LE(c.entries, 64u);
  EXPECT_EQ(c.insertions, 1000u);
  EXPECT_EQ(c.evictions, c.insertions - c.entries);
}

TEST(LruCache, ConcurrentMixedLoadStaysConsistent) {
  ShardedLruCache cache(128, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 2000; ++i) {
        const std::string key = "k" + std::to_string((i * 7 + t) % 200);
        if (i % 3 == 0) {
          cache.put(key, key + "-v");
        } else if (const auto v = cache.get(key); v.has_value()) {
          // A hit must carry the value its key was inserted with.
          EXPECT_EQ(*v, key + "-v");
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const CacheCounters c = cache.counters();
  EXPECT_LE(c.entries, 128u);
  // Per thread: 667 of 2000 iterations put (i % 3 == 0), 1333 get.
  EXPECT_EQ(c.hits + c.misses, 8u * 1333u);
}

}  // namespace
}  // namespace am::service
