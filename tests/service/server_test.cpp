#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "obs/prometheus.hpp"
#include "service/client.hpp"
#include "service/handlers.hpp"
#include "service/server.hpp"

namespace am::service {
namespace {

// --- ServiceCore (no sockets) ------------------------------------------------

Request parse_or_die(const std::string& line) {
  std::string error;
  const auto r = parse_request(line, &error);
  EXPECT_TRUE(r.has_value()) << line << " -> " << error;
  return r.value_or(Request{});
}

TEST(ServiceCore, PredictIsDeterministicAndCached) {
  ServiceCore core({});
  const Request r = parse_or_die(
      R"({"kind":"predict","prim":"FAA","threads":16,"work":100})");
  const auto first = core.handle(r);
  const auto second = core.handle(r);
  EXPECT_TRUE(first.ok);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.response, second.response);  // byte-identical
  EXPECT_NE(first.response.find("\"throughput_mops\""), std::string::npos);
}

TEST(ServiceCore, EquivalentSpellingsShareOneCacheEntry) {
  ServiceCore core({});
  const auto a = core.handle(parse_or_die(
      R"({"kind":"predict","prim":"FAA","threads":16,"work":100})"));
  const auto b = core.handle(parse_or_die(
      R"({"work":100.0,"threads":16.0,"prim":"FAA","kind":"predict","id":"x"})"));
  EXPECT_TRUE(b.cache_hit);
  // Same result payload; only the echoed id differs.
  EXPECT_NE(b.response.find("\"id\":\"x\""), std::string::npos);
  EXPECT_EQ(core.cache().counters().entries, 1u);
  (void)a;
}

TEST(ServiceCore, ThreadsBeyondMachineCoresIsAnError) {
  ServiceCore core({});
  const auto r = core.handle(parse_or_die(
      R"({"kind":"predict","machine":"test","prim":"FAA","threads":5})"));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.response.find("\"error\""), std::string::npos);
  EXPECT_NE(r.response.find("4 cores"), std::string::npos);
}

TEST(ServiceCore, AdviseTargetsAllAnswer) {
  ServiceCore core({});
  for (const char* line : {
           R"({"kind":"advise","target":"counter","threads":16})",
           R"({"kind":"advise","target":"lock","threads":16,"critical":100})",
           R"({"kind":"advise","target":"backoff","threads":16})",
       }) {
    const auto r = core.handle(parse_or_die(line));
    EXPECT_TRUE(r.ok) << line << " -> " << r.response;
  }
}

TEST(ServiceCore, CalibrateReplaysClientSamples) {
  ServiceCore core({});
  const auto r = core.handle(parse_or_die(
      R"({"kind":"calibrate","machine":"test","samples":[)"
      R"({"mode":"private","prim":"FAA","threads":1,"cycles_per_op":12},)"
      R"({"mode":"shared","prim":"FAA","threads":2,"cycles_per_op":120},)"
      R"({"mode":"shared","prim":"FAA","threads":4,"cycles_per_op":130}]})"));
  ASSERT_TRUE(r.ok) << r.response;
  EXPECT_NE(r.response.find("\"t_near\""), std::string::npos);
  EXPECT_NE(r.response.find("\"amp1\":\"amp1\\n"), std::string::npos);
  // Missing the shared sweep: calibration must fail loudly, not fabricate.
  const auto bad = core.handle(parse_or_die(
      R"({"kind":"calibrate","machine":"test","samples":[)"
      R"({"mode":"private","prim":"FAA","threads":1,"cycles_per_op":12}]})"));
  EXPECT_FALSE(bad.ok);
}

TEST(ServiceCore, SimulateRunsAndCaches) {
  ServiceCore core({});
  const Request r = parse_or_die(
      R"({"kind":"simulate","machine":"test","prim":"CAS","threads":4})");
  const auto first = core.handle(r);
  ASSERT_TRUE(first.ok) << first.response;
  EXPECT_NE(first.response.find("\"duration_cycles\""), std::string::npos);
  const auto second = core.handle(r);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.response, second.response);
  // A different seed is a different point.
  const auto other = core.handle(parse_or_die(
      R"({"kind":"simulate","machine":"test","prim":"CAS","threads":4,"seed":2})"));
  EXPECT_FALSE(other.cache_hit);
}

// --- Server over real sockets ------------------------------------------------

struct LiveServer {
  ServiceCore core;
  Server server;
  Endpoint endpoint;

  explicit LiveServer(ServerConfig config = {}, ServiceConfig core_cfg = {})
      : core(std::move(core_cfg)),
        server(core,
               [&config] {
                 if (config.listen.empty()) {
                   Endpoint ep;
                   ep.host = "127.0.0.1";
                   ep.port = 0;
                   config.listen.push_back(ep);
                 }
                 return config;
               }()) {
    std::string error;
    if (!server.start(&error)) {
      ADD_FAILURE() << "server start failed: " << error;
      return;
    }
    endpoint = server.bound_endpoints().front();
  }

  ~LiveServer() {
    Server::request_shutdown();
    server.wait();
  }
};

std::string roundtrip_or_die(ServiceClient& client, const std::string& line) {
  std::string error;
  const auto response = client.roundtrip(line, &error);
  EXPECT_TRUE(response.has_value()) << line << " -> " << error;
  return response.value_or("");
}

TEST(Server, ServesAllKindsOverTcp) {
  LiveServer live;
  ServiceClient client;
  std::string error;
  ASSERT_TRUE(client.connect(live.endpoint, &error)) << error;
  EXPECT_NE(roundtrip_or_die(client, R"({"kind":"ping"})")
                .find("\"pong\":true"),
            std::string::npos);
  EXPECT_NE(roundtrip_or_die(
                client, R"({"kind":"predict","prim":"FAA","threads":8})")
                .find("\"ok\":true"),
            std::string::npos);
  EXPECT_NE(roundtrip_or_die(client,
                             R"({"kind":"advise","target":"backoff","threads":8})")
                .find("backoff_cycles"),
            std::string::npos);
  const std::string stats = roundtrip_or_die(client, R"({"kind":"stats"})");
  EXPECT_NE(stats.find("am-serve-stats/1"), std::string::npos);
  // A malformed line gets an error envelope, and the connection survives.
  EXPECT_NE(roundtrip_or_die(client, "this is not json")
                .find("\"ok\":false"),
            std::string::npos);
  EXPECT_NE(roundtrip_or_die(client, R"({"kind":"ping"})")
                .find("\"pong\""),
            std::string::npos);
}

TEST(Server, ServesOverUnixSocket) {
  const std::string path =
      testing::TempDir() + "/am_serve_test_" + std::to_string(::getpid()) +
      ".sock";
  ServerConfig config;
  Endpoint unix_ep;
  unix_ep.kind = Endpoint::Kind::kUnix;
  unix_ep.path = path;
  config.listen.push_back(unix_ep);
  {
    LiveServer live(config);
    ServiceClient client;
    std::string error;
    ASSERT_TRUE(client.connect(live.endpoint, &error)) << error;
    EXPECT_NE(roundtrip_or_die(client, R"({"kind":"ping"})")
                  .find("\"pong\""),
              std::string::npos);
  }
  // Drained server removed its socket file.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(Server, ByteIdenticalResponsesAcrossConnectionsAndWorkers) {
  ServerConfig config;
  config.service_threads = 4;
  LiveServer live(config);
  const std::string line =
      R"({"kind":"predict","prim":"CAS","threads":12,"work":50})";
  constexpr int kClients = 8;
  constexpr int kPerClient = 16;
  // Warm the cache first so every request below is deterministically a hit
  // (concurrent cold misses on one key would all compute it).
  {
    ServiceClient warm;
    std::string error;
    ASSERT_TRUE(warm.connect(live.endpoint, &error)) << error;
    roundtrip_or_die(warm, line);
  }
  std::vector<std::thread> threads;
  std::vector<std::set<std::string>> seen(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ServiceClient client;
      std::string error;
      ASSERT_TRUE(client.connect(live.endpoint, &error)) << error;
      for (int i = 0; i < kPerClient; ++i) {
        seen[c].insert(roundtrip_or_die(client, line));
      }
    });
  }
  for (auto& t : threads) t.join();
  std::set<std::string> all;
  for (const auto& s : seen) all.insert(s.begin(), s.end());
  EXPECT_EQ(all.size(), 1u);  // every response byte-identical

  // The daemon's stats must show the repeats were cache hits.
  ServiceClient client;
  std::string error;
  ASSERT_TRUE(client.connect(live.endpoint, &error)) << error;
  const std::string stats = roundtrip_or_die(client, R"({"kind":"stats"})");
  const auto doc = JsonValue::parse(stats);
  ASSERT_TRUE(doc.has_value());
  const JsonValue* cache = doc->find("result")->find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->find("hits")->as_number(), kClients * kPerClient * 1.0);
  EXPECT_EQ(cache->find("misses")->as_number(), 1.0);
  EXPECT_EQ(cache->find("entries")->as_number(), 1.0);
}

TEST(Server, Sustains64ConcurrentClosedLoopConnections) {
  ServerConfig config;
  config.service_threads = 4;  // far fewer workers than connections
  LiveServer live(config);
  constexpr int kConns = 64;
  constexpr int kPerConn = 5;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConns; ++c) {
    threads.emplace_back([&, c] {
      ServiceClient client;
      std::string error;
      if (!client.connect(live.endpoint, &error)) return;
      for (int i = 0; i < kPerConn; ++i) {
        const std::string line =
            R"({"kind":"predict","prim":"FAA","threads":)" +
            std::to_string(1 + (c + i) % 36) + "}";
        std::string response;
        if (!client.send_line(line) || !client.recv_line(&response)) return;
        if (response.find("\"ok\":true") != std::string::npos) ++ok_count;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kConns * kPerConn);
}

TEST(Server, DrainFinishesInFlightRequestsThenExits) {
  ServerConfig config;
  config.service_threads = 2;
  LiveServer live(config);
  // Keep a few clients mid-conversation while the drain lands.
  std::atomic<int> answered{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      ServiceClient client;
      std::string error;
      if (!client.connect(live.endpoint, &error)) return;
      for (int i = 0; i < 50; ++i) {
        const auto response =
            client.roundtrip(R"({"kind":"predict","prim":"FAA","threads":8})",
                             &error);
        if (!response.has_value()) return;  // drain closed us: fine
        if (response->find("\"ok\":true") != std::string::npos) ++answered;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  Server::request_shutdown();
  live.server.wait();  // must return: drain completes despite open loops
  for (auto& t : threads) t.join();
  // Every response that was sent was a complete, well-formed line.
  EXPECT_GT(answered.load(), 0);
}

TEST(Server, StatsCountsKindsAndErrors) {
  LiveServer live;
  ServiceClient client;
  std::string error;
  ASSERT_TRUE(client.connect(live.endpoint, &error)) << error;
  roundtrip_or_die(client, R"({"kind":"ping"})");
  roundtrip_or_die(client, R"({"kind":"predict","prim":"FAA","threads":4})");
  roundtrip_or_die(client, "garbage");
  const std::string stats = roundtrip_or_die(client, R"({"kind":"stats"})");
  const auto doc = JsonValue::parse(stats);
  ASSERT_TRUE(doc.has_value());
  const JsonValue* req = doc->find("result")->find("requests");
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->find("ping")->as_number(), 1.0);
  EXPECT_EQ(req->find("predict")->as_number(), 1.0);
  EXPECT_EQ(req->find("parse_errors")->as_number(), 1.0);
  // The stats snapshot is taken before the stats request itself is
  // recorded, so it does not count itself.
  EXPECT_EQ(req->find("stats")->as_number(), 0.0);
  EXPECT_EQ(req->find("total")->as_number(), 3.0);
}

TEST(Server, StatsReportsRollingQps) {
  LiveServer live;
  ServiceClient client;
  std::string error;
  ASSERT_TRUE(client.connect(live.endpoint, &error)) << error;
  roundtrip_or_die(client, R"({"kind":"ping"})");
  const std::string stats = roundtrip_or_die(client, R"({"kind":"stats"})");
  const auto doc = JsonValue::parse(stats);
  ASSERT_TRUE(doc.has_value());
  const JsonValue* result = doc->find("result");
  ASSERT_NE(result, nullptr);
  // The lifetime field survives unchanged; the rolling fields ride along.
  for (const char* key : {"qps", "qps_1s", "qps_10s", "qps_60s"}) {
    const JsonValue* v = result->find(key);
    ASSERT_NE(v, nullptr) << key;
    EXPECT_GE(v->as_number(), 0.0) << key;
  }
}

TEST(Server, MetricsScrapeExposesPrometheusText) {
  LiveServer live;
  ServiceClient client;
  std::string error;
  ASSERT_TRUE(client.connect(live.endpoint, &error)) << error;
  roundtrip_or_die(client, R"({"kind":"ping"})");
  roundtrip_or_die(client, R"({"kind":"predict","prim":"FAA","threads":4})");
  roundtrip_or_die(client, R"({"kind":"predict","prim":"FAA","threads":4})");

  const std::string response =
      roundtrip_or_die(client, R"({"v":"am-serve/1","kind":"metrics"})");
  const auto doc = JsonValue::parse(response);
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->find("ok")->as_bool());
  const JsonValue* result = doc->find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->find("content_type")->as_string(),
            "text/plain; version=0.0.4");
  const std::string text = result->find("text")->as_string();

  // Counters live in the process-wide default registry, shared with every
  // other server this test binary started — assert presence and floors,
  // not exact lifetime values.
  const auto samples = obs::metrics::parse_prometheus_text(text);
  EXPECT_NE(text.find("# TYPE am_server_requests_total counter"),
            std::string::npos);
  const auto pings = obs::metrics::find_sample(
      samples, "am_server_requests_total", {{"kind", "ping"}});
  ASSERT_TRUE(pings.has_value());
  EXPECT_GE(*pings, 1.0);
  const auto predicts = obs::metrics::find_sample(
      samples, "am_server_requests_total", {{"kind", "predict"}});
  ASSERT_TRUE(predicts.has_value());
  EXPECT_GE(*predicts, 2.0);
  // The identical predict pair produced at least one cache hit.
  const auto hits =
      obs::metrics::find_sample(samples, "am_cache_hits_total");
  ASSERT_TRUE(hits.has_value());
  EXPECT_GE(*hits, 1.0);
  // Latency histogram and derived rolling families are present.
  EXPECT_TRUE(obs::metrics::find_sample(
                  samples, "am_server_request_latency_us_count")
                  .has_value());
  EXPECT_TRUE(obs::metrics::find_sample(samples, "am_qps",
                                        {{"window", "10s"}})
                  .has_value());
  EXPECT_TRUE(obs::metrics::find_sample(
                  samples, "am_request_latency_window_us",
                  {{"window", "10s"}, {"quantile", "0.99"}})
                  .has_value());
  EXPECT_TRUE(obs::metrics::find_sample(samples, "am_cache_hit_ratio",
                                        {{"window", "60s"}})
                  .has_value());
}

TEST(Server, MetricsDisabledStillAnswersStats) {
  ServerConfig config;
  config.metrics = false;
  LiveServer live(config);
  ServiceClient client;
  std::string error;
  ASSERT_TRUE(client.connect(live.endpoint, &error)) << error;
  roundtrip_or_die(client, R"({"kind":"ping"})");
  const std::string stats = roundtrip_or_die(client, R"({"kind":"stats"})");
  const auto doc = JsonValue::parse(stats);
  ASSERT_TRUE(doc.has_value());
  // Rolling windows are off; the lifetime qps fallback still answers.
  EXPECT_GE(doc->find("result")->find("qps")->as_number(), 0.0);
}

}  // namespace
}  // namespace am::service
