#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <string>
#include <string_view>

#include "common/json.hpp"
#include "service/protocol.hpp"

namespace am::service {
namespace {

Request must_parse(const std::string& line) {
  std::string error;
  const auto r = parse_request(line, &error);
  EXPECT_TRUE(r.has_value()) << line << " -> " << error;
  return r.value_or(Request{});
}

TEST(Protocol, ParsesEveryKind) {
  EXPECT_EQ(must_parse(R"({"kind":"ping"})").kind, RequestKind::kPing);
  EXPECT_EQ(must_parse(R"({"kind":"stats"})").kind, RequestKind::kStats);
  EXPECT_EQ(must_parse(R"({"kind":"metrics"})").kind, RequestKind::kMetrics);
  const Request p = must_parse(
      R"({"kind":"predict","machine":"knl","mode":"shared","prim":"CAS","threads":16,"work":250})");
  EXPECT_EQ(p.kind, RequestKind::kPredict);
  EXPECT_EQ(p.point.machine, "knl");
  EXPECT_EQ(p.point.prim, Primitive::kCas);
  EXPECT_EQ(p.point.threads, 16u);
  EXPECT_DOUBLE_EQ(p.point.work, 250.0);
  const Request a = must_parse(
      R"({"kind":"advise","target":"lock","threads":8,"critical":120,"outside":30})");
  EXPECT_EQ(a.advise.target, "lock");
  EXPECT_DOUBLE_EQ(a.advise.critical, 120.0);
  const Request c = must_parse(
      R"({"kind":"calibrate","machine":"test","samples":[)"
      R"({"mode":"private","prim":"FAA","threads":1,"cycles_per_op":12},)"
      R"({"mode":"shared","prim":"FAA","threads":4,"cycles_per_op":130}]})");
  ASSERT_EQ(c.calibrate.samples.size(), 2u);
  EXPECT_EQ(c.calibrate.samples[1].mode, "shared");
  const Request s = must_parse(
      R"({"kind":"simulate","machine":"test","prim":"FAA","threads":4,"seed":7})");
  EXPECT_EQ(s.point.seed, 7u);
}

TEST(Protocol, MetricsKindRoundTrips) {
  const Request r = must_parse(R"({"v":"am-serve/1","kind":"metrics"})");
  EXPECT_EQ(r.kind, RequestKind::kMetrics);
  EXPECT_STREQ(to_string(RequestKind::kMetrics), "metrics");
  // Canonical form is stable and re-parses to the same kind.
  const std::string canon = canonical_request(r);
  const Request again = must_parse(canon);
  EXPECT_EQ(again.kind, RequestKind::kMetrics);
  EXPECT_EQ(canonical_request(again), canon);
}

TEST(Protocol, VersionGate) {
  EXPECT_EQ(must_parse(R"({"v":"am-serve/1","kind":"ping"})").kind,
            RequestKind::kPing);
  std::string error;
  EXPECT_FALSE(parse_request(R"({"v":"am-serve/2","kind":"ping"})", &error));
  EXPECT_NE(error.find("am-serve/2"), std::string::npos);
}

TEST(Protocol, RejectsMalformedRequests) {
  std::string error;
  EXPECT_FALSE(parse_request("", &error));
  EXPECT_FALSE(parse_request("not json", &error));
  EXPECT_FALSE(parse_request("[1,2]", &error));
  EXPECT_FALSE(parse_request(R"({"kind":"nope"})", &error));
  EXPECT_FALSE(parse_request(R"({"kind":"predict","prim":"XYZ"})", &error));
  EXPECT_FALSE(
      parse_request(R"({"kind":"predict","threads":0})", &error));
  EXPECT_FALSE(
      parse_request(R"({"kind":"predict","threads":100000})", &error));
  EXPECT_FALSE(
      parse_request(R"({"kind":"predict","machine":"mips"})", &error));
  EXPECT_FALSE(
      parse_request(R"({"kind":"predict","mode":"weird"})", &error));
  EXPECT_FALSE(parse_request(R"({"kind":"advise","target":"x"})", &error));
  EXPECT_FALSE(parse_request(R"({"kind":"calibrate","samples":[]})", &error));
  EXPECT_FALSE(parse_request(
      R"({"kind":"calibrate","samples":[{"mode":"private","prim":"FAA","threads":1,"cycles_per_op":-1}]})",
      &error));
}

TEST(Canonical, InsensitiveToOrderWhitespaceAndNumberSpelling) {
  const Request a = must_parse(
      R"({"kind":"predict","machine":"xeon","mode":"shared","prim":"FAA","threads":16,"work":100})");
  const Request b = must_parse(
      R"({ "work": 100.0, "prim": "FAA", "threads": 16.0, "kind": "predict",
           "mode": "shared", "machine": "xeon" })");
  EXPECT_EQ(canonical_request(a), canonical_request(b));
  EXPECT_EQ(request_cache_key(a), request_cache_key(b));
}

TEST(Canonical, IrrelevantMembersDoNotChangeTheKey) {
  // zipf parameters are irrelevant in shared mode; the id never keys.
  const Request a = must_parse(
      R"({"kind":"predict","mode":"shared","prim":"FAA","threads":8})");
  const Request b = must_parse(
      R"({"kind":"predict","mode":"shared","prim":"FAA","threads":8,
          "zipf_lines":999,"zipf_s":1.5,"id":"req-42"})");
  EXPECT_EQ(request_cache_key(a), request_cache_key(b));
  EXPECT_EQ(b.id, "req-42");
  // ...but in zipf mode they are load-bearing.
  const Request z1 = must_parse(
      R"({"kind":"predict","mode":"zipf","prim":"FAA","threads":8,"zipf_lines":64})");
  const Request z2 = must_parse(
      R"({"kind":"predict","mode":"zipf","prim":"FAA","threads":8,"zipf_lines":128})");
  EXPECT_NE(request_cache_key(z1), request_cache_key(z2));
}

TEST(Canonical, DistinctRequestsGetDistinctKeys) {
  const char* lines[] = {
      R"({"kind":"predict","prim":"FAA","threads":8})",
      R"({"kind":"predict","prim":"CAS","threads":8})",
      R"({"kind":"predict","prim":"FAA","threads":9})",
      R"({"kind":"predict","prim":"FAA","threads":8,"work":1})",
      R"({"kind":"simulate","prim":"FAA","threads":8})",
      R"({"kind":"advise","threads":8})",
  };
  std::set<std::string> keys;
  for (const char* line : lines) {
    const std::string key = request_cache_key(must_parse(line));
    EXPECT_EQ(key.size(), 32u);
    keys.insert(key);
  }
  EXPECT_EQ(keys.size(), std::size(lines));
}

TEST(Canonical, FormIsItselfValidJson) {
  const Request r = must_parse(
      R"({"kind":"simulate","mode":"zipf","prim":"CASLOOP","threads":4,
          "work":12.5,"zipf_lines":32,"zipf_s":0.8,"seed":9})");
  const std::string canon = canonical_request(r);
  std::string error;
  const auto doc = JsonValue::parse(canon, &error);
  ASSERT_TRUE(doc.has_value()) << canon << " -> " << error;
  // Canonicalizing the canonical form is a fixed point.
  const Request again = must_parse(canon);
  EXPECT_EQ(canonical_request(again), canon);
}

TEST(ChainHash, SaltsAndContentBothMatter) {
  EXPECT_EQ(chain_hash("abc", 1), chain_hash("abc", 1));
  EXPECT_NE(chain_hash("abc", 1), chain_hash("abc", 2));
  EXPECT_NE(chain_hash("abc", 1), chain_hash("abd", 1));
  EXPECT_NE(chain_hash("", 1), chain_hash("", 2));
  // Length is folded in: a trailing NUL is not invisible.
  EXPECT_NE(chain_hash(std::string("a\0", 2), 1), chain_hash("a", 1));
}

TEST(Envelopes, ResultAndErrorShape) {
  Request r = must_parse(R"({"kind":"ping","id":"p1"})");
  const std::string ok = make_result_response(r, R"({"pong":true})");
  ASSERT_FALSE(ok.empty());
  EXPECT_EQ(ok.back(), '\n');
  const auto doc = JsonValue::parse(std::string_view(ok.data(), ok.size() - 1));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("v")->as_string(), "am-serve/1");
  EXPECT_EQ(doc->find("id")->as_string(), "p1");
  EXPECT_TRUE(doc->find("ok")->as_bool());
  EXPECT_TRUE(doc->find("result")->find("pong")->as_bool());

  const std::string err = make_error_response("", "bad \"thing\"\n");
  const auto edoc =
      JsonValue::parse(std::string_view(err.data(), err.size() - 1));
  ASSERT_TRUE(edoc.has_value()) << err;
  EXPECT_FALSE(edoc->find("ok")->as_bool());
  EXPECT_EQ(edoc->find("error")->as_string(), "bad \"thing\"\n");
  EXPECT_EQ(edoc->find("id"), nullptr);  // empty id omitted
}

}  // namespace
}  // namespace am::service
