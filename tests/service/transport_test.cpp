// Transport robustness: the byte-level contracts under the protocol —
// recv_line's size cap, structured error codes, client deadlines and
// connect retries. These are the pieces the fleet tier leans on when
// workers die mid-stream.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "service/client.hpp"
#include "service/handlers.hpp"
#include "service/net.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace am::service {
namespace {

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(RecvLine, ReadsLinesSplitAcrossWrites) {
  SocketPair sp;
  ASSERT_TRUE(write_all(sp.a, "hel"));
  ASSERT_TRUE(write_all(sp.a, "lo\nwor"));
  ASSERT_TRUE(write_all(sp.a, "ld\n"));
  std::string buffer, line;
  EXPECT_EQ(recv_line(sp.b, &buffer, &line), RecvStatus::kOk);
  EXPECT_EQ(line, "hello");
  EXPECT_EQ(recv_line(sp.b, &buffer, &line), RecvStatus::kOk);
  EXPECT_EQ(line, "world");
}

TEST(RecvLine, ReportsCleanCloseAsClosed) {
  SocketPair sp;
  ASSERT_TRUE(write_all(sp.a, "partial-without-newline"));
  ::close(sp.a);
  sp.a = -1;
  std::string buffer, line;
  EXPECT_EQ(recv_line(sp.b, &buffer, &line), RecvStatus::kClosed);
}

TEST(RecvLine, EnforcesByteCapAsTooLarge) {
  SocketPair sp;
  const std::string big(512, 'x');  // no newline: an unbounded-line attack
  ASSERT_TRUE(write_all(sp.a, big));
  std::string buffer, line;
  EXPECT_EQ(recv_line(sp.b, &buffer, &line, /*max_bytes=*/256),
            RecvStatus::kTooLarge);
  EXPECT_TRUE(buffer.empty());  // poisoned buffer is discarded, not kept
}

TEST(RecvLine, CapAllowsLinesUpToTheLimit) {
  SocketPair sp;
  const std::string line_in(100, 'y');
  ASSERT_TRUE(write_all(sp.a, line_in + "\n"));
  std::string buffer, line;
  EXPECT_EQ(recv_line(sp.b, &buffer, &line, /*max_bytes=*/256),
            RecvStatus::kOk);
  EXPECT_EQ(line, line_in);
}

TEST(Protocol, CodedErrorEnvelopeRoundTrips) {
  const std::string line =
      make_error_response("req-9", errcode::kOverloaded, "try later");
  EXPECT_EQ(response_error_code(line), errcode::kOverloaded);
  EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(line.find("\"id\":\"req-9\""), std::string::npos);
  EXPECT_NE(line.find("\"error\":\"try later\""), std::string::npos);
}

TEST(Protocol, LegacyErrorEnvelopeHasNoCode) {
  const std::string line = make_error_response("req-9", "plain message");
  EXPECT_EQ(response_error_code(line), "");
  EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
}

TEST(Protocol, SuccessEnvelopeHasNoCode) {
  EXPECT_EQ(response_error_code(
                R"({"v":"am-serve/1","ok":true,"result":{"pong":true}})"),
            "");
}

TEST(Server, OversizedRequestLineGetsStructuredTooLarge) {
  ServiceCore core({});
  ServerConfig config;
  Endpoint ep;
  ep.host = "127.0.0.1";
  ep.port = 0;
  config.listen.push_back(ep);
  config.max_line_bytes = 1024;
  config.metrics = false;
  Server server(core, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  ServiceClient client;
  ASSERT_TRUE(client.connect(server.bound_endpoints().front(), &error))
      << error;
  const std::string oversized =
      R"({"kind":"predict","junk":")" + std::string(4096, 'z') + "\"}";
  const auto response = client.roundtrip(oversized, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response_error_code(*response), errcode::kRequestTooLarge);

  Server::request_shutdown();
  server.wait();
}

TEST(Server, MultiMegabyteRequestJustOverCapAnswersStructured) {
  // The am_client --file path ships whole request bodies from disk — a
  // run_guest line with a base64 ELF payload is naturally megabytes. Just
  // over the cap (overshoot small enough to sit in socket buffers) the
  // send completes and the structured answer must come back.
  ServiceCore core({});
  ServerConfig config;
  Endpoint ep;
  ep.host = "127.0.0.1";
  ep.port = 0;
  config.listen.push_back(ep);
  config.max_line_bytes = 1 << 20;
  config.metrics = false;
  Server server(core, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  ServiceClient client;
  client.set_timeout_ms(10000);
  ASSERT_TRUE(client.connect(server.bound_endpoints().front(), &error))
      << error;
  const std::string line = R"({"kind":"run_guest","elf":")" +
                           std::string((1 << 20) + (32 << 10), 'A') + "\"}";
  const auto response = client.roundtrip(line, &error);
  ASSERT_TRUE(response.has_value()) << error;
  EXPECT_EQ(response_error_code(*response), errcode::kRequestTooLarge);

  Server::request_shutdown();
  server.wait();
}

TEST(Server, FourMegabyteRequestNeverWedgesTheServer) {
  // Far over the cap the server answers once and hangs up mid-send; the
  // client either reads the structured error or sees a clean transport
  // failure (never a hang — deadlines bound both sides), and the server
  // must keep serving new connections afterwards.
  ServiceCore core({});
  ServerConfig config;
  Endpoint ep;
  ep.host = "127.0.0.1";
  ep.port = 0;
  config.listen.push_back(ep);
  config.max_line_bytes = 1 << 20;
  config.metrics = false;
  Server server(core, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  ServiceClient big;
  big.set_timeout_ms(10000);
  ASSERT_TRUE(big.connect(server.bound_endpoints().front(), &error)) << error;
  const std::string line =
      R"({"kind":"run_guest","elf":")" + std::string(4 << 20, 'A') + "\"}";
  const auto response = big.roundtrip(line, &error);
  if (response.has_value()) {
    EXPECT_EQ(response_error_code(*response), errcode::kRequestTooLarge);
  }

  ServiceClient after;
  after.set_timeout_ms(10000);
  ASSERT_TRUE(after.connect(server.bound_endpoints().front(), &error))
      << error;
  const auto pong =
      after.roundtrip(R"({"v":"am-serve/1","kind":"ping"})", &error);
  ASSERT_TRUE(pong.has_value()) << error;
  EXPECT_NE(pong->find("\"pong\":true"), std::string::npos);

  Server::request_shutdown();
  server.wait();
}

TEST(Client, ConnectRetrySucceedsWhenServerAppearsLate) {
  // Reserve a port, close it, then start the real server there after a
  // delay; the client must survive the gap via backoff retries.
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(probe);

  ServiceCore core({});
  ServerConfig config;
  Endpoint ep;
  ep.host = "127.0.0.1";
  ep.port = port;
  config.listen.push_back(ep);
  config.metrics = false;

  std::thread late_start([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    Server server(core, config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    Server::request_shutdown();
    server.wait();
  });

  ServiceClient client;
  client.set_timeout_ms(2000);
  std::string error;
  EXPECT_TRUE(client.connect_retry(ep, /*retries=*/20, /*backoff_ms=*/25,
                                   /*jitter_seed=*/1, &error))
      << error;
  const auto response = client.roundtrip(R"({"kind":"ping"})", &error);
  EXPECT_TRUE(response.has_value()) << error;
  late_start.join();
}

TEST(Client, DeadlineOnSilentPeerReportsTimeout) {
  // A listener that accepts and then says nothing: a hung worker, as seen
  // by a client with a deadline.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  std::thread silent([lfd] {
    const int conn = ::accept(lfd, nullptr, nullptr);
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
    if (conn >= 0) ::close(conn);
  });

  Endpoint ep;
  ep.host = "127.0.0.1";
  ep.port = ntohs(addr.sin_port);
  ServiceClient client;
  client.set_timeout_ms(100);
  std::string error;
  ASSERT_TRUE(client.connect(ep, &error)) << error;
  const auto t0 = std::chrono::steady_clock::now();
  const auto response = client.roundtrip(R"({"kind":"ping"})", &error);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(response.has_value());
  EXPECT_EQ(client.last_status(), RecvStatus::kTimeout);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
  silent.join();
  ::close(lfd);
}

}  // namespace
}  // namespace am::service
