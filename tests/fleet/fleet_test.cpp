// End-to-end fleet tests: a real Supervisor forking real am_serve worker
// processes (AM_SERVE_BIN, injected by CMake), fronted by the Router.
//
// These are the robustness contracts am_fleet ships on:
//   - byte-identity: the fleet answers exactly the bytes a single daemon
//     would, regardless of which worker serves, before and after restarts;
//   - no dropped requests: SIGKILLing a worker mid-load yields only
//     successes or structured error envelopes, never hangs or raw resets
//     surfacing to the client as protocol garbage;
//   - crashed workers rejoin; spawn->die loops open the circuit breaker;
//   - full workers shed with `overloaded`; a dead shard with a cached
//     answer serves stale instead of erroring.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_core/sim_backend.hpp"
#include "bench_core/sweep.hpp"
#include "fleet/chaos.hpp"
#include "fleet/router.hpp"
#include "fleet/supervisor.hpp"
#include "service/client.hpp"
#include "service/handlers.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "sim/config.hpp"

namespace am::fleet {
namespace {

std::string serve_binary() {
#ifdef AM_SERVE_BIN
  return AM_SERVE_BIN;
#else
  return find_worker_binary();
#endif
}

std::string fresh_runtime_dir() {
  static std::atomic<int> counter{0};
  const std::string dir = ::testing::TempDir() + "/am_fleet_test_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(counter.fetch_add(1));
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

FleetConfig fast_config(std::size_t workers) {
  FleetConfig config;
  config.workers = workers;
  config.worker_binary = serve_binary();
  config.runtime_dir = fresh_runtime_dir();
  config.worker_threads = 2;
  config.health_interval_ms = 50;
  config.probe_timeout_ms = 1000;
  config.restart_backoff_ms = 20;
  config.metrics = false;
  return config;
}

/// Supervisor + Router, started and waited-up, or the test fails.
struct LiveFleet {
  Supervisor supervisor;
  Router router;

  explicit LiveFleet(FleetConfig fleet_config, RouterConfig router_config = {})
      : supervisor(std::move(fleet_config)),
        router(supervisor, [&router_config] {
          router_config.metrics = false;
          return router_config;
        }()) {
    std::string error;
    if (!supervisor.start(&error)) {
      ADD_FAILURE() << "fleet start failed: " << error;
      return;
    }
    if (!supervisor.wait_all_up(supervisor.config().start_grace_ms)) {
      ADD_FAILURE() << "fleet did not come up";
    }
  }

  ~LiveFleet() { supervisor.drain(); }

  service::HandleResult handle(const std::string& line) {
    std::string error;
    const auto request = service::parse_request(line, &error);
    EXPECT_TRUE(request.has_value()) << line << " -> " << error;
    if (!request.has_value()) return {};
    return router.handle(*request, line, nullptr);
  }
};

bool wait_until(const std::function<bool()>& pred, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

TEST(Fleet, MissingBinaryFailsStartWithError) {
  FleetConfig config = fast_config(1);
  config.worker_binary = "/nonexistent/am_serve";
  Supervisor supervisor(std::move(config));
  std::string error;
  EXPECT_FALSE(supervisor.start(&error));
  EXPECT_FALSE(error.empty());
}

TEST(Fleet, ServesByteIdenticalToSingleDaemon) {
  ASSERT_FALSE(serve_binary().empty());
  LiveFleet fleet(fast_config(2));
  service::ServiceCore core({});
  for (const char* line : {
           R"({"kind":"predict","prim":"FAA","threads":16,"work":100})",
           R"({"kind":"predict","prim":"CAS","threads":8,"id":"q1"})",
           R"({"kind":"advise","target":"counter","threads":16})",
           R"({"kind":"simulate","machine":"test","prim":"TAS","threads":2,"seed":7})",
       }) {
    const auto via_fleet = fleet.handle(line);
    EXPECT_TRUE(via_fleet.ok) << line << " -> " << via_fleet.response;
    std::string perr;
    const auto request = service::parse_request(line, &perr);
    ASSERT_TRUE(request.has_value()) << perr;
    std::string direct = core.handle(*request, line, nullptr).response;
    if (direct.empty() || direct.back() != '\n') direct += '\n';
    EXPECT_EQ(via_fleet.response, direct) << line;
  }
}

TEST(Fleet, RepeatedRequestsAreByteIdenticalAcrossWorkers) {
  ASSERT_FALSE(serve_binary().empty());
  FleetConfig config = fast_config(2);
  RouterConfig router_config;
  router_config.failover_retries = 1;
  LiveFleet fleet(std::move(config), router_config);
  const std::string line =
      R"({"kind":"predict","prim":"CAS","threads":12,"work":50})";
  std::set<std::string> seen;
  for (int i = 0; i < 20; ++i) {
    const auto result = fleet.handle(line);
    ASSERT_TRUE(result.ok) << result.response;
    seen.insert(result.response);
  }
  EXPECT_EQ(seen.size(), 1u);
}

TEST(Fleet, SigkillMidLoadEveryRequestAnsweredAndWorkerRejoins) {
  ASSERT_FALSE(serve_binary().empty());
  FleetConfig config = fast_config(2);
  RouterConfig router_config;
  router_config.failover_retries = 1;
  router_config.request_timeout_ms = 5000;
  LiveFleet fleet(std::move(config), router_config);

  // Baseline bytes per request shape, before any fault.
  std::vector<std::string> lines;
  std::vector<std::string> baseline;
  for (int i = 0; i < 8; ++i) {
    lines.push_back(
        R"({"kind":"predict","prim":"FAA","threads":8,"work":)" +
        std::to_string(10 * i) + "}");
    const auto r = fleet.handle(lines.back());
    ASSERT_TRUE(r.ok) << r.response;
    baseline.push_back(r.response);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> empty_responses{0};
  std::atomic<std::uint64_t> malformed{0};
  std::vector<std::thread> loaders;
  for (int t = 0; t < 4; ++t) {
    loaders.emplace_back([&, t] {
      std::size_t i = static_cast<std::size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto r = fleet.handle(lines[i++ % lines.size()]);
        if (r.response.empty()) {
          empty_responses.fetch_add(1);
        } else if (!r.ok &&
                   service::response_error_code(r.response).empty()) {
          // Errors must be *structured*: a code the client dispatches on.
          malformed.fetch_add(1);
        }
        answered.fetch_add(1);
      }
    });
  }

  // SIGKILL each worker once, mid-load.
  for (std::size_t victim = 0; victim < 2; ++victim) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    const auto status = fleet.supervisor.status();
    if (status[victim].pid > 0) ::kill(status[victim].pid, SIGKILL);
    EXPECT_TRUE(wait_until(
        [&] { return fleet.supervisor.workers_up() == 2; }, 10000))
        << "worker " << victim << " did not rejoin";
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop.store(true);
  for (auto& t : loaders) t.join();

  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(empty_responses.load(), 0u);
  EXPECT_EQ(malformed.load(), 0u);
  EXPECT_GE(fleet.supervisor.total_restarts(), 2u);

  // Post-restart responses still match the pre-fault bytes exactly.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto r = fleet.handle(lines[i]);
    ASSERT_TRUE(r.ok) << r.response;
    EXPECT_EQ(r.response, baseline[i]) << lines[i];
  }
}

TEST(Fleet, FullWorkersShedWithStructuredOverloaded) {
  ASSERT_FALSE(serve_binary().empty());
  static ChaosConfig chaos;  // outlives the router's forwarding threads
  chaos.delay_response.store(-1);  // always delay: holds in-flight slots
  chaos.delay_ms.store(400);
  FleetConfig config = fast_config(1);
  config.max_inflight = 1;
  config.chaos = nullptr;  // supervisor side quiet; router side delays
  RouterConfig router_config;
  router_config.failover_retries = 0;
  router_config.stale_capacity = 0;  // force the shed path, not stale
  router_config.chaos = &chaos;
  LiveFleet fleet(std::move(config), router_config);

  std::atomic<int> overloaded{0};
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const std::string line =
          R"({"kind":"predict","prim":"FAA","threads":4,"id":"c)" +
          std::to_string(c) + "\"}";
      const auto r = fleet.handle(line);
      if (r.ok) {
        ok.fetch_add(1);
      } else if (service::response_error_code(r.response) ==
                 service::errcode::kOverloaded) {
        overloaded.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  chaos.delay_response.store(0);

  // One slot, four concurrent requests, each holding the slot ~400ms: at
  // least one must have been shed, and every request got an answer.
  EXPECT_GE(ok.load(), 1);
  EXPECT_GE(overloaded.load(), 1);
  EXPECT_EQ(ok.load() + overloaded.load(), 4);
}

TEST(Fleet, SpawnDeathLoopOpensCircuitBreaker) {
  FleetConfig config = fast_config(1);
  config.worker_binary = "/bin/false";  // exits immediately, never serves
  config.circuit_failures = 3;
  config.restart_backoff_ms = 10;
  config.restart_backoff_max_ms = 20;
  config.start_grace_ms = 300;
  config.circuit_cooloff_ms = 60000;
  Supervisor supervisor(std::move(config));
  std::string error;
  ASSERT_TRUE(supervisor.start(&error)) << error;
  EXPECT_TRUE(wait_until(
      [&] {
        return supervisor.status()[0].state == WorkerState::kCircuitOpen;
      },
      10000));
  EXPECT_EQ(supervisor.workers_up(), 0u);
  supervisor.drain();
}

TEST(Fleet, DeadShardServesStaleFromRouterLru) {
  ASSERT_FALSE(serve_binary().empty());
  FleetConfig config = fast_config(1);
  config.restart_backoff_ms = 60000;  // stay down once killed
  RouterConfig router_config;
  router_config.failover_retries = 0;
  LiveFleet fleet(std::move(config), router_config);

  const std::string line =
      R"({"kind":"predict","prim":"CAS","threads":8,"id":"stale-1"})";
  const auto warm = fleet.handle(line);
  ASSERT_TRUE(warm.ok) << warm.response;

  const auto status = fleet.supervisor.status();
  ASSERT_GT(status[0].pid, 0);
  ::kill(status[0].pid, SIGKILL);
  ASSERT_TRUE(wait_until(
      [&] { return fleet.supervisor.workers_up() == 0; }, 10000));

  const auto stale = fleet.handle(line);
  EXPECT_TRUE(stale.cache_hit);
  EXPECT_EQ(stale.response, warm.response);  // byte-identical stale serve

  // A request the router never saw cannot be served stale: structured
  // `unavailable`, not a hang or an empty line.
  const auto miss = fleet.handle(
      R"({"kind":"predict","prim":"SWP","threads":3,"id":"never-seen"})");
  EXPECT_FALSE(miss.ok);
  EXPECT_EQ(service::response_error_code(miss.response),
            service::errcode::kUnavailable);
}

TEST(Fleet, DeadFleetPromotesSimulateIntoSharedDiskCache) {
  ASSERT_FALSE(serve_binary().empty());
  FleetConfig config = fast_config(1);
  config.restart_backoff_ms = 60000;  // stay down once killed
  config.sweep_cache_dir = fresh_runtime_dir();
  const std::string cache_dir = config.sweep_cache_dir;
  RouterConfig router_config;
  router_config.failover_retries = 0;
  LiveFleet fleet(std::move(config), router_config);

  const auto status = fleet.supervisor.status();
  ASSERT_GT(status[0].pid, 0);
  ::kill(status[0].pid, SIGKILL);
  ASSERT_TRUE(wait_until(
      [&] { return fleet.supervisor.workers_up() == 0; }, 10000));

  // A simulate the fleet never served: no stale copy anywhere and every
  // worker down, so the front computes the point itself (promotion) instead
  // of answering `unavailable`.
  const std::string line =
      R"({"kind":"simulate","machine":"test","prim":"FAA","threads":2,"seed":11,"id":"promo-1"})";
  const auto promoted = fleet.handle(line);
  ASSERT_TRUE(promoted.ok) << promoted.response;
  EXPECT_EQ(fleet.router.promoted(), 1u);

  // The promotion published the shared disk entry under the exact key a
  // worker's own sweep engine would have used.
  std::string perr;
  const auto request = service::parse_request(line, &perr);
  ASSERT_TRUE(request.has_value()) << perr;
  const sim::MachineConfig mc = sim::preset_by_name(request->point.machine);
  const std::string key = bench::sweep_cache_key(
      bench::sim_backend_cache_identity(mc, bench::SimBackendOptions{}),
      service::simulate_workload(request->point),
      bench::sweep_point_seed(request->point.seed, 0));
  struct ::stat st {};
  EXPECT_EQ(::stat((cache_dir + "/" + key + ".json").c_str(), &st), 0)
      << "promotion did not write " << key << ".json";

  // A second worker sharing the cache dir gets the warm hit: a fresh
  // ServiceCore (exactly what a worker runs) answers byte-identically.
  service::ServiceConfig worker_cfg;
  worker_cfg.sim_cache_dir = cache_dir;
  worker_cfg.metrics = false;
  service::ServiceCore second_worker(worker_cfg);
  std::string direct = second_worker.handle(*request, line, nullptr).response;
  if (direct.empty() || direct.back() != '\n') direct += '\n';
  EXPECT_EQ(promoted.response, direct);

  // The promotion also seeded the router's stale LRU: repeats are memory
  // hits, not recomputes.
  const auto again = fleet.handle(line);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.response, promoted.response);
  EXPECT_EQ(fleet.router.promoted(), 1u);

  // Promotion is simulate-only: other kinds still degrade to `unavailable`.
  const auto miss = fleet.handle(
      R"({"kind":"predict","prim":"SWP","threads":3,"id":"no-promo"})");
  EXPECT_FALSE(miss.ok);
  EXPECT_EQ(service::response_error_code(miss.response),
            service::errcode::kUnavailable);
}

TEST(Fleet, ChaosKillScheduleKeepsFleetServing) {
  ASSERT_FALSE(serve_binary().empty());
  static ChaosConfig chaos;
  chaos.kill_every_ms.store(200);
  FleetConfig config = fast_config(2);
  config.chaos = &chaos;
  RouterConfig router_config;
  router_config.failover_retries = 1;
  LiveFleet fleet(std::move(config), router_config);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(1200);
  std::uint64_t answered = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto r = fleet.handle(
        R"({"kind":"predict","prim":"FAA","threads":8,"work":5})");
    ASSERT_FALSE(r.response.empty());
    if (!r.ok) {
      // Under chaos an answer may be a structured degradation; never junk.
      EXPECT_FALSE(service::response_error_code(r.response).empty())
          << r.response;
    }
    ++answered;
  }
  chaos.kill_every_ms.store(0);
  EXPECT_GT(answered, 0u);
  EXPECT_GE(fleet.supervisor.total_restarts(), 1u);
  // Once chaos stops, the fleet heals to full strength.
  EXPECT_TRUE(wait_until(
      [&] { return fleet.supervisor.workers_up() == 2; }, 10000));
}

}  // namespace
}  // namespace am::fleet
