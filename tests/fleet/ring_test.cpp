#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "fleet/ring.hpp"

namespace am::fleet {
namespace {

TEST(HashRing, OwnerIsDeterministicAcrossInstances) {
  HashRing a(4), b(4);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "canonical-request-" + std::to_string(i);
    EXPECT_EQ(a.owner(key), b.owner(key));
  }
}

TEST(HashRing, OwnerIsStableWhenRebuiltAtSameSize) {
  // A restarted fleet (same worker count) must route every key to the same
  // shard — this is what keeps per-worker LRU caches hot across restarts.
  HashRing first(8);
  std::map<std::string, std::size_t> assignment;
  for (int i = 0; i < 500; ++i) {
    const std::string key = "k" + std::to_string(i);
    assignment[key] = first.owner(key);
  }
  HashRing rebuilt(8);
  for (const auto& [key, owner] : assignment) {
    EXPECT_EQ(rebuilt.owner(key), owner);
  }
}

TEST(HashRing, RouteOrderListsEachWorkerOnceStartingWithOwner) {
  HashRing ring(5);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::vector<std::size_t> order = ring.route_order(key);
    ASSERT_EQ(order.size(), 5u);
    EXPECT_EQ(order.front(), ring.owner(key));
    const std::set<std::size_t> distinct(order.begin(), order.end());
    EXPECT_EQ(distinct.size(), 5u);
  }
}

TEST(HashRing, OwnershipIsRoughlyBalanced) {
  const HashRing ring(4, /*vnodes=*/64);
  const std::vector<double> arcs = ring.ownership();
  ASSERT_EQ(arcs.size(), 4u);
  double total = 0.0;
  for (const double arc : arcs) {
    total += arc;
    // 64 virtual nodes per worker keeps the worst shard within a factor
    // of ~2 of fair share (0.25) with these fixed hash points.
    EXPECT_GT(arc, 0.10);
    EXPECT_LT(arc, 0.50);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HashRing, SingleWorkerOwnsEverything) {
  HashRing ring(1);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "x" + std::to_string(i);
    EXPECT_EQ(ring.owner(key), 0u);
    EXPECT_EQ(ring.route_order(key), std::vector<std::size_t>{0});
  }
}

TEST(HashRing, KeysSpreadAcrossWorkers) {
  HashRing ring(4);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(ring.owner("spread-" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 4u);  // 200 keys must touch all 4 shards
}

}  // namespace
}  // namespace am::fleet
