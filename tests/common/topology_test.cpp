#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/topology.hpp"

namespace am {
namespace {

TEST(Synthetic, ShapeAndCounts) {
  const Topology t = Topology::synthetic(2, 4, 2);
  EXPECT_EQ(t.logical_cpu_count(), 16u);
  EXPECT_EQ(t.package_count(), 2u);
  EXPECT_EQ(t.core_count(), 8u);
}

TEST(Synthetic, OsIdsAreUnique) {
  const Topology t = Topology::synthetic(2, 8, 2);
  std::set<int> ids;
  for (const auto& c : t.cpus()) ids.insert(c.os_id);
  EXPECT_EQ(ids.size(), t.logical_cpu_count());
}

TEST(PinSequence, CompactFillsSocketZeroFirst) {
  const Topology t = Topology::synthetic(2, 4, 2);
  const auto seq = t.pin_sequence(PinOrder::kCompact);
  ASSERT_EQ(seq.size(), 16u);
  // The first 4 placements land on package 0, the next 4 on package 1.
  for (int i = 0; i < 4; ++i) {
    const auto& cpu = t.cpus()[static_cast<std::size_t>(seq[i])];
    EXPECT_EQ(cpu.package, 0) << "slot " << i;
    EXPECT_EQ(cpu.smt, 0);
  }
  for (int i = 4; i < 8; ++i) {
    EXPECT_EQ(t.cpus()[static_cast<std::size_t>(seq[i])].package, 1);
  }
}

TEST(PinSequence, ScatterAlternatesSockets) {
  const Topology t = Topology::synthetic(2, 4, 1);
  const auto seq = t.pin_sequence(PinOrder::kScatter);
  ASSERT_EQ(seq.size(), 8u);
  for (int i = 0; i + 1 < 8; i += 2) {
    const int p0 = t.cpus()[static_cast<std::size_t>(seq[i])].package;
    const int p1 = t.cpus()[static_cast<std::size_t>(seq[i + 1])].package;
    EXPECT_NE(p0, p1) << "slots " << i << "," << i + 1;
  }
}

TEST(PinSequence, SmtFirstPacksSiblings) {
  const Topology t = Topology::synthetic(1, 2, 2);
  const auto seq = t.pin_sequence(PinOrder::kSmtFirst);
  ASSERT_EQ(seq.size(), 4u);
  const auto& a = t.cpus()[static_cast<std::size_t>(seq[0])];
  const auto& b = t.cpus()[static_cast<std::size_t>(seq[1])];
  EXPECT_EQ(a.core, b.core);  // siblings adjacent
}

TEST(PinSequence, IsAlwaysAPermutation) {
  const Topology t = Topology::synthetic(2, 3, 2);
  for (PinOrder o : {PinOrder::kCompact, PinOrder::kScatter,
                     PinOrder::kSmtFirst}) {
    auto seq = t.pin_sequence(o);
    std::sort(seq.begin(), seq.end());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(seq[i], static_cast<int>(i)) << to_string(o);
    }
  }
}

TEST(Relations, SameCoreSamePackage) {
  const Topology t = Topology::synthetic(2, 2, 2);
  // Synthetic layout: index = smt * (packages*cores) + package*cores + core.
  EXPECT_TRUE(t.same_core(0, 4));    // (p0,c0,smt0) vs (p0,c0,smt1)
  EXPECT_FALSE(t.same_core(0, 1));   // different cores
  EXPECT_TRUE(t.same_package(0, 1));
  EXPECT_FALSE(t.same_package(0, 2));
}

TEST(Discover, ReturnsAtLeastOneCpu) {
  const Topology t = Topology::discover();
  EXPECT_GE(t.logical_cpu_count(), 1u);
  EXPECT_FALSE(t.describe().empty());
}

}  // namespace
}  // namespace am
