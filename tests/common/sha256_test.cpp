// SHA-256 against the FIPS 180-4 / RFC 6234 known-answer vectors, plus the
// padding edge cases (tail lengths that do and don't spill into a second
// final block) a hand-rolled implementation most plausibly gets wrong.

#include <gtest/gtest.h>

#include <string>

#include "common/sha256.hpp"

namespace am {
namespace {

TEST(Sha256, KnownAnswerVectors) {
  EXPECT_EQ(
      sha256_hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      sha256_hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  EXPECT_EQ(
      sha256_hex(std::string(1'000'000, 'a')),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, PaddingBoundaries) {
  // 55 bytes fits length-in-block; 56..64 spill into a second block.
  for (std::size_t n : {55u, 56u, 63u, 64u, 65u}) {
    const std::string a(n, 'x');
    std::string b = a;
    b.back() = 'y';
    EXPECT_EQ(sha256_hex(a).size(), 64u) << n;
    EXPECT_NE(sha256_hex(a), sha256_hex(b)) << n;
  }
  // Pinned against python hashlib: sha256(b'x' * 64).
  EXPECT_EQ(
      sha256_hex(std::string(64, 'x')),
      "7ce100971f64e7001e8fe5a51973ecdfe1ced42befe7ee8d5fd6219506b5393c");
}

TEST(Sha256, TruncatedHexPrefix) {
  const std::string full = sha256_hex("abc");
  EXPECT_EQ(sha256_hex("abc", 16), full.substr(0, 32));
  EXPECT_EQ(sha256_hex("abc", 1), full.substr(0, 2));
  EXPECT_EQ(sha256_hex("abc", 99), full);  // clamped
}

}  // namespace
}  // namespace am
