// Negative-path coverage for the CLI layer: malformed values for typed
// flags must be rejected at parse() time with a clear diagnostic, and
// mutually exclusive flag combinations must error instead of silently
// downgrading. Before typed flags, "--threads=abc" parsed to 0 and
// surfaced as an empty sweep deep inside an experiment.
#include <gtest/gtest.h>

#include "bench_core/sweep.hpp"
#include "common/cli.hpp"

namespace am {
namespace {

CliParser make_typed_parser() {
  CliParser p("typed test tool");
  p.add_flag("threads", "comma list of thread counts", "1,2,4",
             CliParser::FlagKind::kIntList);
  p.add_flag("jobs", "worker count", "0", CliParser::FlagKind::kInt);
  p.add_flag("seed", "64-bit seed", "1", CliParser::FlagKind::kUint64);
  p.add_flag("rate", "a double", "1.5", CliParser::FlagKind::kDouble);
  p.add_flag("verbose", "boolean", "false", CliParser::FlagKind::kBool);
  p.add_flag("name", "free-form string", "", CliParser::FlagKind::kString);
  return p;
}

TEST(CliNegative, MalformedIntRejected) {
  for (const char* bad : {"--jobs=abc", "--jobs=", "--jobs=4x", "--jobs=1.5",
                          "--jobs=0x10"}) {
    CliParser p = make_typed_parser();
    const char* argv[] = {"prog", bad};
    EXPECT_FALSE(p.parse(2, argv)) << bad;
  }
}

TEST(CliNegative, MalformedIntListRejected) {
  for (const char* bad :
       {"--threads=", "--threads=1,two,3", "--threads=1,,4", "--threads=,",
        "--threads=4,"}) {
    CliParser p = make_typed_parser();
    const char* argv[] = {"prog", bad};
    EXPECT_FALSE(p.parse(2, argv)) << bad;
  }
}

TEST(CliNegative, MalformedDoubleAndBoolRejected) {
  for (const char* bad :
       {"--rate=fast", "--rate=", "--verbose=maybe", "--verbose=2"}) {
    CliParser p = make_typed_parser();
    const char* argv[] = {"prog", bad};
    EXPECT_FALSE(p.parse(2, argv)) << bad;
  }
}

TEST(CliNegative, NegativeSeedRejectedForUnsigned) {
  CliParser p = make_typed_parser();
  const char* argv[] = {"prog", "--seed=-3"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(CliNegative, BareTypedFlagRejected) {
  // "--jobs" with no value used to silently become the string "true".
  CliParser p = make_typed_parser();
  const char* argv[] = {"prog", "--jobs"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(CliNegative, WellFormedValuesStillParse) {
  CliParser p = make_typed_parser();
  const char* argv[] = {"prog",       "--threads=1,8,64", "--jobs=16",
                        "--seed=18446744073709551615",    "--rate=0.25",
                        "--verbose=yes"};
  ASSERT_TRUE(p.parse(6, argv));
  EXPECT_EQ(p.get_int_list("threads").size(), 3u);
  EXPECT_EQ(p.get_int("jobs"), 16);
  EXPECT_EQ(p.get_uint64("seed"), 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.25);
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(CliNegative, NegativeIntIsValidForSignedKind) {
  CliParser p = make_typed_parser();
  const char* argv[] = {"prog", "--jobs=-1"};
  EXPECT_TRUE(p.parse(2, argv));
  EXPECT_EQ(p.get_int("jobs"), -1);
}

TEST(CliNegative, StringKindStaysPermissive) {
  CliParser p = make_typed_parser();
  const char* argv[] = {"prog", "--name=any thing at all"};
  EXPECT_TRUE(p.parse(2, argv));
}

TEST(CliNegative, JobsTraceConflict) {
  EXPECT_NE(bench::jobs_trace_conflict(4, true), "");
  EXPECT_NE(bench::jobs_trace_conflict(2, true).find("--jobs=2"),
            std::string::npos);
  EXPECT_EQ(bench::jobs_trace_conflict(1, true), "");
  EXPECT_EQ(bench::jobs_trace_conflict(0, true), "");  // auto downgrades
  EXPECT_EQ(bench::jobs_trace_conflict(4, false), "");
}

TEST(CliNegative, EndpointKindValidatesAtParseTime) {
  for (const char* good :
       {"--listen=127.0.0.1:7787", "--listen=0.0.0.0:0",
        "--listen=localhost:65535", "--listen=unix:/tmp/am.sock",
        "--listen=unix:rel/path.sock"}) {
    CliParser p("endpoint test");
    p.add_flag("listen", "endpoint", "127.0.0.1:7787",
               CliParser::FlagKind::kEndpoint);
    const char* argv[] = {"prog", good};
    EXPECT_TRUE(p.parse(2, argv)) << good;
  }
  for (const char* bad :
       {"--listen=", "--listen=nohost", "--listen=:7787", "--listen=host:",
        "--listen=host:abc", "--listen=host:70000", "--listen=host:-1",
        "--listen=unix:", "--listen=host:12x"}) {
    CliParser p("endpoint test");
    p.add_flag("listen", "endpoint", "127.0.0.1:7787",
               CliParser::FlagKind::kEndpoint);
    const char* argv[] = {"prog", bad};
    EXPECT_FALSE(p.parse(2, argv)) << bad;
  }
}

TEST(CliNegative, IsEndpointHelper) {
  EXPECT_TRUE(CliParser::is_endpoint("a:1"));
  EXPECT_TRUE(CliParser::is_endpoint("unix:/x"));
  EXPECT_FALSE(CliParser::is_endpoint("a"));
  EXPECT_FALSE(CliParser::is_endpoint("unix:"));
  EXPECT_FALSE(CliParser::is_endpoint(":1"));
  EXPECT_FALSE(CliParser::is_endpoint("a:99999"));
}

}  // namespace
}  // namespace am
