#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/affinity.hpp"
#include "common/cacheline.hpp"
#include "common/cpu.hpp"

namespace am {
namespace {

TEST(Tsc, Monotonic) {
  const auto a = rdtscp();
  const auto b = rdtscp();
  EXPECT_GE(b, a);
}

TEST(Tsc, FrequencyPlausible) {
  const double hz = tsc_frequency_hz();
  // Anything between 100 MHz and 10 GHz is a plausible TSC rate.
  EXPECT_GT(hz, 1e8);
  EXPECT_LT(hz, 1e10);
  // Cached: second call returns the identical value.
  EXPECT_DOUBLE_EQ(hz, tsc_frequency_hz());
}

TEST(Tsc, TicksToNsRoughlyTracksSleep) {
  const auto t0 = rdtscp();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto t1 = rdtscp();
  const double ns = ticks_to_ns(t1 - t0);
  EXPECT_GT(ns, 10e6);   // at least 10 ms measured
  EXPECT_LT(ns, 500e6);  // and not absurdly long
}

TEST(Cacheline, PaddingGeometry) {
  EXPECT_EQ(round_up_to_line(0), 0u);
  EXPECT_EQ(round_up_to_line(1), kCacheLineSize);
  EXPECT_EQ(round_up_to_line(64), 64u);
  EXPECT_EQ(round_up_to_line(65), 128u);
  Padded<int> p(7);
  EXPECT_EQ(*p, 7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&p) % kNoFalseSharingAlign, 0u);
}

TEST(Affinity, PinToCpuZeroSucceedsOnLinux) {
#ifdef __linux__
  EXPECT_TRUE(pin_current_thread(0));
  EXPECT_EQ(current_cpu(), 0);
  EXPECT_TRUE(unpin_current_thread());
#else
  GTEST_SKIP() << "affinity is Linux-only";
#endif
}

TEST(Affinity, RejectsInvalidCpu) {
  EXPECT_FALSE(pin_current_thread(-1));
  EXPECT_FALSE(pin_current_thread(1 << 20));
}

TEST(DoNotOptimize, CompilesAndRuns) {
  int x = 42;
  do_not_optimize(x);
  compiler_barrier();
  cpu_relax();
  SUCCEED();
}

}  // namespace
}  // namespace am
