// Edge-case behavior of the statistics toolkit: empty samples, one- and
// two-element samples, and degenerate runs. Every result here must be a
// well-defined finite number — never NaN, infinity or garbage — because
// these values flow straight into tables, CSVs and JSON reports.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bench_core/result.hpp"
#include "bench_core/sim_backend.hpp"
#include "bench_core/workload.hpp"
#include "common/stats.hpp"
#include "sim/config.hpp"
#include "sim/sim_stats.hpp"

namespace am {
namespace {

TEST(StatsEdge, PercentileEmptySampleIsZero) {
  const std::vector<double> none;
  for (double q : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(percentile(none, q), 0.0) << "q=" << q;
  }
}

TEST(StatsEdge, PercentileSingleton) {
  const std::vector<double> one{42.0};
  for (double q : {0.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(percentile(one, q), 42.0) << "q=" << q;
  }
}

TEST(StatsEdge, PercentilePair) {
  const std::vector<double> two{10.0, 20.0};
  EXPECT_EQ(percentile(two, 0.0), 10.0);
  EXPECT_EQ(percentile(two, 50.0), 15.0);  // linear interpolation
  EXPECT_EQ(percentile(two, 100.0), 20.0);
  EXPECT_NEAR(percentile(two, 99.0), 19.9, 1e-9);
}

TEST(StatsEdge, PercentileOutOfRangeQClamps) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_EQ(percentile(v, -5.0), 1.0);
  EXPECT_EQ(percentile(v, 250.0), 3.0);
}

TEST(StatsEdge, SummarizeEmptyIsAllZeroFinite) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  for (double v : {s.mean, s.stddev, s.min, s.max, s.p50, s.p90, s.p99,
                   s.ci95_halfwidth()}) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_EQ(v, 0.0);
  }
}

TEST(StatsEdge, SummarizeSingleton) {
  const std::vector<double> one{7.5};
  const Summary s = summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 7.5);
  EXPECT_EQ(s.stddev, 0.0);  // n-1 denominator must not divide by zero
  EXPECT_EQ(s.min, 7.5);
  EXPECT_EQ(s.max, 7.5);
  EXPECT_EQ(s.p50, 7.5);
  EXPECT_EQ(s.p99, 7.5);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);  // no CI from one observation
}

TEST(StatsEdge, SummarizePair) {
  const std::vector<double> two{10.0, 14.0};
  const Summary s = summarize(two);
  EXPECT_EQ(s.mean, 12.0);
  EXPECT_NEAR(s.stddev, std::sqrt(8.0), 1e-12);  // sample stddev, n-1 = 1
  EXPECT_EQ(s.p50, 12.0);
  EXPECT_GT(s.ci95_halfwidth(), 0.0);
}

TEST(StatsEdge, CoefficientOfVariationZeroMean) {
  const std::vector<double> balanced{-1.0, 1.0};
  EXPECT_EQ(coefficient_of_variation(balanced), 0.0);
  EXPECT_EQ(coefficient_of_variation(std::vector<double>{}), 0.0);
}

TEST(StatsEdge, FairnessOnEmptyAndZeroShares) {
  const std::vector<double> none;
  const std::vector<double> zeros{0.0, 0.0, 0.0};
  EXPECT_EQ(jain_fairness(none), 1.0);
  EXPECT_EQ(jain_fairness(zeros), 1.0);
  EXPECT_EQ(min_max_ratio(none), 1.0);
  EXPECT_EQ(min_max_ratio(zeros), 1.0);
}

TEST(StatsEdge, MapeDegenerateInputs) {
  const std::vector<double> empty;
  EXPECT_EQ(mape(empty, empty), 0.0);
  // Mismatched lengths are refused, not partially evaluated.
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_EQ(mape(a, b), 0.0);
  // Zero reference points are skipped, not divided by.
  const std::vector<double> pred{5.0, 10.0};
  const std::vector<double> act{0.0, 10.0};
  EXPECT_EQ(mape(pred, act), 0.0);
  EXPECT_TRUE(std::isfinite(max_relative_error(pred, act)));
}

TEST(StatsEdge, LogHistogramEmpty) {
  const LogHistogram h(1.0, 1e6);
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  for (double q : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(h.value_at_percentile(q), 0.0) << "q=" << q;
  }
}

TEST(StatsEdge, LogHistogramSingleSample) {
  LogHistogram h(1.0, 1e6, 8);
  h.add(100.0);
  EXPECT_EQ(h.total_count(), 1u);
  EXPECT_EQ(h.mean(), 100.0);
  EXPECT_EQ(h.observed_min(), 100.0);
  EXPECT_EQ(h.observed_max(), 100.0);
  // Every percentile lands in the one occupied bucket; bucket resolution
  // bounds the answer, so check the right decade rather than equality.
  for (double q : {0.0, 50.0, 99.0}) {
    const double v = h.value_at_percentile(q);
    EXPECT_GE(v, 50.0) << "q=" << q;
    EXPECT_LE(v, 200.0) << "q=" << q;
  }
}

TEST(StatsEdge, GeometricMeanDegenerate) {
  EXPECT_EQ(geometric_mean(std::vector<double>{}), 0.0);
  EXPECT_EQ(geometric_mean(std::vector<double>{2.0, 0.0}), 0.0);
  EXPECT_EQ(geometric_mean(std::vector<double>{-1.0, 4.0}), 0.0);
}

TEST(StatsEdge, EmptyRunStatsMeansAreFinite) {
  const sim::RunStats empty;  // zero threads, zero window
  EXPECT_EQ(empty.total_ops(), 0u);
  EXPECT_EQ(empty.throughput_ops_per_kcycle(), 0.0);
  EXPECT_EQ(empty.throughput_mops(), 0.0);
  EXPECT_EQ(empty.mean_latency_cycles(), 0.0);
  EXPECT_EQ(empty.success_rate(), 1.0);  // vacuous success, not 0/0
  EXPECT_EQ(empty.jain_fairness_ops(), 1.0);
  EXPECT_EQ(empty.min_max_ops_ratio(), 1.0);
  EXPECT_EQ(empty.energy_per_op_nj(), 0.0);
}

TEST(StatsEdge, ZeroOpThreadStats) {
  const sim::ThreadStats idle;
  EXPECT_EQ(idle.mean_latency(), 0.0);
  EXPECT_EQ(idle.latency_hist.total_count(), 0u);
}

TEST(StatsEdge, EmptyMeasuredRunMeansAreFinite) {
  const bench::MeasuredRun empty;
  EXPECT_EQ(empty.throughput_ops_per_kcycle(), 0.0);
  EXPECT_EQ(empty.mean_latency_cycles(), 0.0);
  EXPECT_EQ(empty.success_rate(), 1.0);
  EXPECT_EQ(empty.attempts_per_op(), 1.0);
  EXPECT_EQ(empty.jain_fairness(), 1.0);
  EXPECT_EQ(empty.energy_per_op_nj(), 0.0);
}

TEST(StatsEdge, LatencyTailValidGatesP99) {
  // A thread with no completed ops must advertise an invalid tail, so
  // writers render n/a / null instead of a misleading 0-cycle p99.
  bench::ThreadResult idle;
  EXPECT_FALSE(idle.latency_tail_valid);
  bench::MeasuredRun run;
  run.threads.push_back(idle);
  run.duration_cycles = 1000.0;
  EXPECT_EQ(run.total_ops(), 0u);
  EXPECT_EQ(run.mean_latency_cycles(), 0.0);
}

TEST(StatsEdge, SimBackendMarksTailInvalidWhenNothingCompletes) {
  // A measurement window shorter than any operation's latency completes
  // zero ops; the backend must report an invalid latency tail (not p99=0)
  // and finite derived metrics.
  bench::SimBackendOptions opts;
  opts.warmup_cycles = 0;
  opts.measure_cycles = 2;
  bench::SimBackend backend(sim::test_machine(2), opts, /*seed=*/1);
  bench::WorkloadConfig w;
  w.mode = bench::WorkloadMode::kHighContention;
  w.prim = Primitive::kFaa;
  w.threads = 2;
  w.work = 0;
  w.seed = 1;
  const bench::MeasuredRun run = backend.run(w);
  EXPECT_EQ(run.total_ops(), 0u);
  for (const auto& t : run.threads) {
    EXPECT_FALSE(t.latency_tail_valid);
    EXPECT_EQ(t.p99_latency_cycles, 0.0);
  }
  EXPECT_TRUE(std::isfinite(run.throughput_ops_per_kcycle()));
  EXPECT_EQ(run.success_rate(), 1.0);
}

}  // namespace
}  // namespace am
