#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/table.hpp"

namespace am {
namespace {

TEST(Table, AsciiAlignment) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.50"});
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 2.50  |"), std::string::npos);
}

TEST(Table, RowsPaddedToHeaderWidth) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.row(0).size(), 3u);
}

TEST(Table, CsvEscaping) {
  Table t({"k", "v"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "line"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(std::size_t{42}), "42");
}

TEST(Table, WriteCsvRoundTrip) {
  Table t({"x"});
  t.add_row({"7"});
  const std::string path = "/tmp/am_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string header;
  std::string row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "x");
  EXPECT_EQ(row, "7");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvFailsOnBadPath) {
  Table t({"x"});
  EXPECT_FALSE(t.write_csv("/nonexistent-dir/foo.csv"));
}

}  // namespace
}  // namespace am
