#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace am {
namespace {

TEST(Summary, BasicMoments) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Summary, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::vector<double> one{7.0};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(Summary, ConfidenceIntervalShrinksWithN) {
  std::vector<double> small(10, 0.0);
  std::vector<double> large(1000, 0.0);
  for (std::size_t i = 0; i < small.size(); ++i) small[i] = i % 2;
  for (std::size_t i = 0; i < large.size(); ++i) large[i] = i % 2;
  EXPECT_GT(summarize(small).ci95_halfwidth(),
            summarize(large).ci95_halfwidth());
}

TEST(Percentile, Interpolation) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 17.5);
}

TEST(Fairness, JainIndexExtremes) {
  const std::vector<double> equal{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(jain_fairness(equal), 1.0);
  const std::vector<double> monopoly{20, 0, 0, 0};
  EXPECT_DOUBLE_EQ(jain_fairness(monopoly), 0.25);  // 1/n
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(jain_fairness(empty), 1.0);
}

TEST(Fairness, JainIsScaleInvariant) {
  const std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b;
  for (double v : a) b.push_back(v * 1000.0);
  EXPECT_NEAR(jain_fairness(a), jain_fairness(b), 1e-12);
}

TEST(Fairness, MinMaxRatio) {
  const std::vector<double> v{2, 4, 8};
  EXPECT_DOUBLE_EQ(min_max_ratio(v), 0.25);
  const std::vector<double> zeros{0, 0};
  EXPECT_DOUBLE_EQ(min_max_ratio(zeros), 1.0);
}

TEST(LogHistogram, PercentilesRoughlyCorrect) {
  LogHistogram h(1.0, 1e6, 32);
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.total_count(), 1000u);
  EXPECT_NEAR(h.value_at_percentile(50), 500.0, 500.0 * 0.1);
  EXPECT_NEAR(h.value_at_percentile(99), 990.0, 990.0 * 0.1);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);  // exact: mean tracked separately
}

TEST(LogHistogram, UnderflowOverflowBuckets) {
  LogHistogram h(10.0, 1000.0, 8);
  h.add(1.0);     // underflow
  h.add(1e9);     // overflow
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_DOUBLE_EQ(h.observed_min(), 1.0);
  EXPECT_DOUBLE_EQ(h.observed_max(), 1e9);
}

TEST(LogHistogram, MergeAccumulates) {
  LogHistogram a(1.0, 1e4, 16);
  LogHistogram b(1.0, 1e4, 16);
  a.add(10);
  b.add(100);
  b.add(1000);
  a.merge(b);
  EXPECT_EQ(a.total_count(), 3u);
  EXPECT_DOUBLE_EQ(a.observed_max(), 1000.0);
}

TEST(LogHistogram, MergeRejectsIncompatible) {
  LogHistogram a(1.0, 1e4, 16);
  LogHistogram b(1.0, 1e4, 8);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LogHistogram, RejectsBadGeometry) {
  EXPECT_THROW(LogHistogram(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 5.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

TEST(LeastSquares, ExactLinearFit) {
  // y = 3 + 2x, noise-free.
  std::vector<double> x{0, 1, 2, 3, 4};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 + 2.0 * xi);
  const LeastSquaresFit fit = linear_regression(x, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coefficients[0], 3.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LeastSquares, TwoRegressors) {
  // y = 5a + 7b over a small design.
  std::vector<std::vector<double>> rows{{1, 0}, {0, 1}, {1, 1}, {2, 1}, {1, 3}};
  std::vector<double> y;
  for (const auto& r : rows) y.push_back(5.0 * r[0] + 7.0 * r[1]);
  const LeastSquaresFit fit = least_squares(rows, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coefficients[0], 5.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 7.0, 1e-9);
}

TEST(LeastSquares, SingularDesignFails) {
  // Two identical columns: unidentifiable.
  std::vector<std::vector<double>> rows{{1, 1}, {2, 2}, {3, 3}};
  std::vector<double> y{2, 4, 6};
  EXPECT_FALSE(least_squares(rows, y).ok);
}

TEST(LeastSquares, MismatchedSizesFail) {
  std::vector<std::vector<double>> rows{{1}, {2}};
  std::vector<double> y{1};
  EXPECT_FALSE(least_squares(rows, y).ok);
}

TEST(ErrorMetrics, MapeAndMaxError) {
  const std::vector<double> actual{100, 200, 0};
  const std::vector<double> pred{110, 180, 50};
  // Zero actual skipped: errors 10% and 10%.
  EXPECT_NEAR(mape(pred, actual), 0.1, 1e-12);
  EXPECT_NEAR(max_relative_error(pred, actual), 0.1, 1e-12);
}

TEST(ErrorMetrics, GeometricMean) {
  const std::vector<double> v{1, 10, 100};
  EXPECT_NEAR(geometric_mean(v), 10.0, 1e-9);
  const std::vector<double> with_zero{1, 0};
  EXPECT_DOUBLE_EQ(geometric_mean(with_zero), 0.0);
}

TEST(CoefficientOfVariation, Basics) {
  const std::vector<double> constant{5, 5, 5};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(constant), 0.0);
  const std::vector<double> spread{1, 9};
  EXPECT_GT(coefficient_of_variation(spread), 0.5);
}

}  // namespace
}  // namespace am
