#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.hpp"

namespace am {
namespace {

TEST(SplitMix, DeterministicAndDistinct) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  SplitMix64 c(43);
  const auto x = a.next();
  EXPECT_EQ(x, b.next());
  EXPECT_NE(x, c.next());
}

TEST(Xoshiro, Deterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, NextBelowBounds) {
  Xoshiro256 rng(1);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Xoshiro, NextBelowRoughlyUniform) {
  Xoshiro256 rng(3);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Xoshiro, DoubleInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000.0, 0.5, 0.02);
}

TEST(Zipf, UniformWhenExponentZero) {
  ZipfSampler z(10, 0.0);
  Xoshiro256 rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50'000; ++i) ++counts[z.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 600);
}

TEST(Zipf, SkewPrefersSmallIndices) {
  ZipfSampler z(100, 1.2);
  Xoshiro256 rng(13);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 50'000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[9] * 5);
  EXPECT_GT(counts[0], 10'000);
}

TEST(Zipf, SamplesAlwaysInRange) {
  ZipfSampler z(7, 0.99);
  Xoshiro256 rng(17);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(z.sample(rng), 7u);
}

TEST(Zipf, RejectsDegenerate) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(5, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace am
