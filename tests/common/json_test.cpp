#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/json.hpp"

namespace am {
namespace {

TEST(JsonEscape, EscapesControlAndStructuralCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonWriter, WritesNestedDocument) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("name", "bench");
  w.kv("count", std::uint64_t{42});
  w.kv("ratio", 0.5);
  w.kv("ok", true);
  w.kv_null("missing");
  w.key("list").begin_array();
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.depth(), 0);
  EXPECT_EQ(os.str(),
            "{\"name\":\"bench\",\"count\":42,\"ratio\":0.5,\"ok\":true,"
            "\"missing\":null,\"list\":[1,2]}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(1.0);
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null,1]");
}

TEST(JsonWriter, PrettyOutputStaysParseable) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.key("rows").begin_array();
  w.begin_object();
  w.kv("x", std::uint64_t{1});
  w.end_object();
  w.end_array();
  w.end_object();
  const auto doc = JsonValue::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* rows = doc->find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->at(0)->find("x")->as_number(), 1.0);
}

TEST(JsonValue, ParsesScalarsAndStructure) {
  const auto doc = JsonValue::parse(
      R"({"s":"aA\n","n":-2.5e2,"b":false,"z":null,"a":[1,{"k":2}]})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("s")->as_string(), "aA\n");
  EXPECT_DOUBLE_EQ(doc->find("n")->as_number(), -250.0);
  EXPECT_FALSE(doc->find("b")->as_bool());
  EXPECT_TRUE(doc->find("z")->is_null());
  const JsonValue* a = doc->find("a");
  ASSERT_EQ(a->size(), 2u);
  EXPECT_EQ(a->at(0)->as_number(), 1.0);
  EXPECT_EQ(a->at(1)->find("k")->as_number(), 2.0);
  EXPECT_EQ(doc->find("nope"), nullptr);
  EXPECT_EQ(a->at(7), nullptr);
}

TEST(JsonValue, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(JsonValue::parse("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(JsonValue::parse("[1,]").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(JsonValue::parse("\"unterminated").has_value());
  EXPECT_FALSE(JsonValue::parse("").has_value());
}

TEST(JsonRoundTrip, WriterOutputParsesBackIdentically) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("text", "quote \" backslash \\ newline \n");
  w.kv("big", std::uint64_t{1} << 52);
  w.kv("neg", std::int64_t{-7});
  w.kv("pi", 3.14159265358979);
  w.end_object();
  const auto doc = JsonValue::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("text")->as_string(), "quote \" backslash \\ newline \n");
  EXPECT_EQ(doc->find("big")->as_number(),
            static_cast<double>(std::uint64_t{1} << 52));
  EXPECT_EQ(doc->find("neg")->as_number(), -7.0);
  EXPECT_NEAR(doc->find("pi")->as_number(), 3.14159265358979, 1e-12);
}

}  // namespace
}  // namespace am
