#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/json.hpp"

namespace am {
namespace {

TEST(JsonEscape, EscapesControlAndStructuralCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonWriter, WritesNestedDocument) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("name", "bench");
  w.kv("count", std::uint64_t{42});
  w.kv("ratio", 0.5);
  w.kv("ok", true);
  w.kv_null("missing");
  w.key("list").begin_array();
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.depth(), 0);
  EXPECT_EQ(os.str(),
            "{\"name\":\"bench\",\"count\":42,\"ratio\":0.5,\"ok\":true,"
            "\"missing\":null,\"list\":[1,2]}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(1.0);
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null,1]");
}

TEST(JsonWriter, PrettyOutputStaysParseable) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.key("rows").begin_array();
  w.begin_object();
  w.kv("x", std::uint64_t{1});
  w.end_object();
  w.end_array();
  w.end_object();
  const auto doc = JsonValue::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* rows = doc->find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->at(0)->find("x")->as_number(), 1.0);
}

TEST(JsonValue, ParsesScalarsAndStructure) {
  const auto doc = JsonValue::parse(
      R"({"s":"aA\n","n":-2.5e2,"b":false,"z":null,"a":[1,{"k":2}]})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("s")->as_string(), "aA\n");
  EXPECT_DOUBLE_EQ(doc->find("n")->as_number(), -250.0);
  EXPECT_FALSE(doc->find("b")->as_bool());
  EXPECT_TRUE(doc->find("z")->is_null());
  const JsonValue* a = doc->find("a");
  ASSERT_EQ(a->size(), 2u);
  EXPECT_EQ(a->at(0)->as_number(), 1.0);
  EXPECT_EQ(a->at(1)->find("k")->as_number(), 2.0);
  EXPECT_EQ(doc->find("nope"), nullptr);
  EXPECT_EQ(a->at(7), nullptr);
}

TEST(JsonValue, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(JsonValue::parse("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(JsonValue::parse("[1,]").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(JsonValue::parse("\"unterminated").has_value());
  EXPECT_FALSE(JsonValue::parse("").has_value());
}

TEST(JsonWriter, NaNAndInfinityInKeyedValuesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("nan", std::numeric_limits<double>::quiet_NaN());
  w.kv("ninf", -std::numeric_limits<double>::infinity());
  w.end_object();
  EXPECT_EQ(os.str(), "{\"nan\":null,\"ninf\":null}");
  const auto doc = JsonValue::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->find("nan")->is_null());
}

TEST(JsonEscape, MultiByteUtf8PassesThroughUnescaped) {
  // Escaping operates on bytes >= 0x20; multi-byte UTF-8 sequences must
  // survive verbatim (machine names and table headers use them).
  const std::string utf8 = "caf\xC3\xA9 \xE2\x9C\x93 \xF0\x9F\x94\xA5";
  EXPECT_EQ(json_escape(utf8), utf8);
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("s", utf8);
  w.end_object();
  const auto doc = JsonValue::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("s")->as_string(), utf8);
}

TEST(JsonRoundTrip, EveryControlCharacterSurvives) {
  std::string all;
  for (int c = 1; c < 0x20; ++c) all += static_cast<char>(c);
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("ctl", all);
  w.end_object();
  // Nothing below 0x20 may appear raw in the document.
  for (const char c : os.str()) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  const auto doc = JsonValue::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("ctl")->as_string(), all);
}

TEST(JsonValue, DecodesUnicodeEscapes) {
  const auto doc = JsonValue::parse(R"(["\u0041\u00e9\u2713"])");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at(0)->as_string(), "A\xC3\xA9\xE2\x9C\x93");
  EXPECT_FALSE(JsonValue::parse(R"(["\u12"])").has_value());
  EXPECT_FALSE(JsonValue::parse(R"(["\uZZZZ"])").has_value());
}

TEST(JsonValue, DeepNestingIsRejectedNotACrash) {
  // Within the parser's depth budget: fine.
  const int kOk = 200;
  std::string ok(static_cast<std::size_t>(kOk), '[');
  ok += "1";
  ok.append(static_cast<std::size_t>(kOk), ']');
  EXPECT_TRUE(JsonValue::parse(ok).has_value());

  // Past the budget: a parse error naming the nesting, not a stack overflow.
  std::string error;
  std::string deep(300, '[');
  deep += "1";
  deep.append(300, ']');
  EXPECT_FALSE(JsonValue::parse(deep, &error).has_value());
  EXPECT_NE(error.find("nesting"), std::string::npos);

  // A hostile input deep enough to smash the stack without the limit.
  const std::string hostile(200'000, '[');
  EXPECT_FALSE(JsonValue::parse(hostile).has_value());
  const std::string hostile_obj(100'000, '{');
  EXPECT_FALSE(JsonValue::parse(hostile_obj).has_value());

  // Depth is measured against the open stack, not totals: many shallow
  // siblings must still parse.
  std::string wide = "[";
  for (int i = 0; i < 1000; ++i) wide += "[1],";
  wide += "[1]]";
  EXPECT_TRUE(JsonValue::parse(wide).has_value());
}

TEST(JsonValue, MalformedCorpusIsRejectedWithoutCrashing) {
  const char* corpus[] = {
      "{",          "}",           "[",           "]",
      "[1,]",       "[,1]",        "{\"a\"}",     "{\"a\":}",
      "{\"a\":1,}", "{:1}",        "{1:2}",       "tru",
      "falsehood",  "nul",         "nan",
      "--1",        "1e",          "1e+",
      "0x10",       "\"\\x\"",     "\"\\u123\"",  "\"open",
      "[\"\\\"]",   "{\"a\":1 \"b\":2}",          "[1 2]",
      "\x01",       "[tru]",       "{\"k\":01x}",
  };
  for (const char* text : corpus) {
    std::string error;
    EXPECT_FALSE(JsonValue::parse(text, &error).has_value())
        << "accepted malformed input: " << text;
    EXPECT_FALSE(error.empty());
  }
  // Truncations of a valid document never crash and never parse.
  const std::string valid =
      R"({"a":[1,2.5,{"b":"x\n"}],"c":null,"d":true})";
  for (std::size_t len = 0; len < valid.size(); ++len) {
    EXPECT_FALSE(JsonValue::parse(valid.substr(0, len)).has_value())
        << "truncation at " << len << " parsed";
  }
  EXPECT_TRUE(JsonValue::parse(valid).has_value());
}

TEST(JsonRoundTrip, AllSingleByteStringsSurvive) {
  // Every possible byte, including NUL and bytes >= 0x80 (which must not
  // sign-extend through json_escape's \u formatting into "￿ff80").
  for (int b = 0; b < 256; ++b) {
    const std::string s(1, static_cast<char>(b));
    const std::string escaped = json_escape(s);
    if (b < 0x20) {
      // Control bytes escape to exactly one short sequence ("\n", "").
      EXPECT_LE(escaped.size(), 6u) << "byte " << b << " -> " << escaped;
    }
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_array();
    w.value(s);
    w.end_array();
    std::string error;
    const auto doc = JsonValue::parse(os.str(), &error);
    ASSERT_TRUE(doc.has_value()) << "byte " << b << ": " << error;
    EXPECT_EQ(doc->at(0)->as_string(), s) << "byte " << b;
  }
}

TEST(JsonRoundTrip, EmbeddedNulAndControlsInsideLongerStrings) {
  std::string s = "head";
  s += '\0';
  s += "\x01\x1f\x7f";
  s += static_cast<char>(0x80);
  s += static_cast<char>(0xff);
  s += "tail";
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("s", s);
  w.end_object();
  // NUL must be escaped, not emitted raw (it would truncate C consumers).
  EXPECT_EQ(os.str().find('\0'), std::string::npos);
  EXPECT_NE(os.str().find("\\u0000"), std::string::npos);
  const auto doc = JsonValue::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("s")->as_string(), s);
}

TEST(JsonRoundTrip, WriterOutputParsesBackIdentically) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("text", "quote \" backslash \\ newline \n");
  w.kv("big", std::uint64_t{1} << 52);
  w.kv("neg", std::int64_t{-7});
  w.kv("pi", 3.14159265358979);
  w.end_object();
  const auto doc = JsonValue::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("text")->as_string(), "quote \" backslash \\ newline \n");
  EXPECT_EQ(doc->find("big")->as_number(),
            static_cast<double>(std::uint64_t{1} << 52));
  EXPECT_EQ(doc->find("neg")->as_number(), -7.0);
  EXPECT_NEAR(doc->find("pi")->as_number(), 3.14159265358979, 1e-12);
}

}  // namespace
}  // namespace am
