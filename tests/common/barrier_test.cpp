#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/barrier.hpp"

namespace am {
namespace {

TEST(SpinBarrier, SinglePartyNeverBlocks) {
  SpinBarrier b(1);
  for (int i = 0; i < 100; ++i) b.arrive_and_wait();
  SUCCEED();
}

TEST(SpinBarrier, SynchronizesPhases) {
  // Each thread increments a phase counter; nobody may observe a phase more
  // than one step away from its own thanks to the barrier.
  constexpr int kThreads = 4;
  constexpr int kPhases = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> counts[kPhases];
  for (auto& c : counts) c.store(0);
  std::atomic<bool> violation{false};

  auto worker = [&] {
    for (int phase = 0; phase < kPhases; ++phase) {
      counts[phase].fetch_add(1, std::memory_order_acq_rel);
      barrier.arrive_and_wait();
      // After the barrier every thread must have bumped this phase.
      if (counts[phase].load(std::memory_order_acquire) != kThreads) {
        violation.store(true);
      }
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load());
}

TEST(SpinBarrier, ReusableAcrossManyRounds) {
  constexpr int kThreads = 2;
  SpinBarrier barrier(kThreads);
  std::atomic<long> total{0};
  auto worker = [&] {
    for (int i = 0; i < 1000; ++i) {
      total.fetch_add(1, std::memory_order_relaxed);
      barrier.arrive_and_wait();
    }
  };
  std::thread a(worker);
  std::thread b(worker);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2000);
}

TEST(SpinBarrier, ReportsParties) {
  SpinBarrier b(3);
  EXPECT_EQ(b.parties(), 3u);
}

}  // namespace
}  // namespace am
