// Strict base64 contract: round-trips are exact and every malformed or
// non-canonical wire form is refused — two distinct accepted strings never
// decode to the same bytes (the run_guest canonicalization relies on it).

#include <gtest/gtest.h>

#include <string>

#include "common/base64.hpp"

namespace am {
namespace {

std::string decode_ok(const std::string& text) {
  std::string out;
  EXPECT_TRUE(base64_decode(text, &out)) << text;
  return out;
}

TEST(Base64, RoundTripsAllTailLengths) {
  for (const std::string s :
       {std::string(), std::string("f"), std::string("fo"), std::string("foo"),
        std::string("foob"), std::string("fooba"), std::string("foobar"),
        std::string("\x00\xff\x7f\x80", 4)}) {
    EXPECT_EQ(decode_ok(base64_encode(s)), s);
  }
  EXPECT_EQ(base64_encode("foobar"), "Zm9vYmFy");  // RFC 4648 §10 vector
  EXPECT_EQ(base64_encode("foob"), "Zm9vYg==");
}

TEST(Base64, RejectsMalformedShapes) {
  std::string out;
  EXPECT_FALSE(base64_decode("QQQ", &out));     // length % 4 != 0
  EXPECT_FALSE(base64_decode("QQ=A", &out));    // data after padding
  EXPECT_FALSE(base64_decode("=QQQ", &out));    // leading padding
  EXPECT_FALSE(base64_decode("QQ==QQ==", &out));  // padding not terminal
  EXPECT_FALSE(base64_decode("Zm9v\n", &out));  // whitespace
  EXPECT_FALSE(base64_decode("Zm-v", &out));    // url alphabet
}

TEST(Base64, RejectsNonCanonicalTrailingBits) {
  // "QQ==" is the canonical encoding of "A"; "QR==" differs only in the
  // unused low bits of the final symbol. A lenient decoder maps both to
  // "A" — strict RFC 4648 §3.5 refuses the second spelling.
  EXPECT_EQ(decode_ok("QQ=="), "A");
  std::string out;
  EXPECT_FALSE(base64_decode("QR==", &out));
  // Same for one-pad groups: "QUI=" is canonical for "AB", "QUJ=" is not.
  EXPECT_EQ(decode_ok("QUI="), "AB");
  EXPECT_FALSE(base64_decode("QUJ=", &out));
}

}  // namespace
}  // namespace am
