#include <gtest/gtest.h>

#include "common/cli.hpp"

namespace am {
namespace {

CliParser make_parser() {
  CliParser p("test tool");
  p.add_flag("threads", "thread count", "4");
  p.add_flag("rate", "a double", "1.5");
  p.add_flag("verbose", "boolean flag", "false");
  p.add_flag("list", "comma list", "1,2,3");
  p.add_flag("name", "a string", "foo");
  return p;
}

TEST(Cli, DefaultsApply) {
  CliParser p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get_int("threads"), 4);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 1.5);
  EXPECT_FALSE(p.get_bool("verbose"));
  EXPECT_FALSE(p.has("threads"));
}

TEST(Cli, EqualsForm) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--threads=16", "--rate=2.25"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.get_int("threads"), 16);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 2.25);
  EXPECT_TRUE(p.has("threads"));
}

TEST(Cli, SpaceForm) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--name", "bar"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.get("name"), "bar");
}

TEST(Cli, BareBooleanFlag) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--verbose", "--threads=2"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_TRUE(p.get_bool("verbose"));
  EXPECT_EQ(p.get_int("threads"), 2);
}

TEST(Cli, IntList) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--list=2,4,8,16"};
  ASSERT_TRUE(p.parse(2, argv));
  const auto list = p.get_int_list("list");
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list[3], 16);
}

TEST(Cli, UnknownFlagRejected) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(Cli, PositionalRejected) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(Cli, HelpReturnsFalse) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(Cli, DuplicateRegistrationThrows) {
  CliParser p("x");
  p.add_flag("a", "first");
  EXPECT_THROW(p.add_flag("a", "again"), std::logic_error);
}

TEST(Cli, UnregisteredGetThrows) {
  CliParser p("x");
  EXPECT_THROW(p.get("nope"), std::logic_error);
}

TEST(Cli, UsageMentionsFlags) {
  CliParser p = make_parser();
  const std::string usage = p.usage();
  EXPECT_NE(usage.find("--threads"), std::string::npos);
  EXPECT_NE(usage.find("thread count"), std::string::npos);
}

}  // namespace
}  // namespace am
