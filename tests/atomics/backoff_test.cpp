#include <gtest/gtest.h>

#include "atomics/backoff.hpp"

namespace am {
namespace {

TEST(ExponentialBackoff, DoublesUpToCap) {
  ExponentialBackoff b(4, 32);
  EXPECT_EQ(b.current_spins(), 4u);
  b.pause();
  EXPECT_EQ(b.current_spins(), 8u);
  b.pause();
  b.pause();
  EXPECT_EQ(b.current_spins(), 32u);
  b.pause();
  EXPECT_EQ(b.current_spins(), 32u);  // capped
}

TEST(ExponentialBackoff, ResetReturnsToMin) {
  ExponentialBackoff b(2, 64);
  b.pause();
  b.pause();
  b.reset();
  EXPECT_EQ(b.current_spins(), 2u);
}

TEST(Backoff, NamesForAblationTables) {
  EXPECT_STREQ(NoBackoff::name(), "none");
  EXPECT_STREQ(ExponentialBackoff::name(), "exp");
}

TEST(NoBackoff, PauseIsCallable) {
  NoBackoff b;
  b.reset();
  b.pause();
  SUCCEED();
}

}  // namespace
}  // namespace am
