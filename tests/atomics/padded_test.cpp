#include <gtest/gtest.h>

#include <cstdint>

#include "atomics/padded.hpp"

namespace am {
namespace {

TEST(PaddedAtomic, OnePerDoubleLine) {
  EXPECT_EQ(sizeof(PaddedAtomic), kNoFalseSharingAlign);
  EXPECT_EQ(alignof(PaddedAtomic), kNoFalseSharingAlign);
}

TEST(CellArray, CellsDoNotShareLines) {
  CellArray cells(8);
  for (std::size_t i = 0; i + 1 < cells.size(); ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&cells[i]);
    const auto b = reinterpret_cast<std::uintptr_t>(&cells[i + 1]);
    EXPECT_GE(b - a, kNoFalseSharingAlign);
  }
}

TEST(CellArray, FillResetsEverything) {
  CellArray cells(4);
  for (std::size_t i = 0; i < cells.size(); ++i) cells[i].store(i + 1);
  cells.fill(7);
  for (std::size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(cells[i].load(), 7u);
}

TEST(CellArray, SizeReported) {
  CellArray cells(5);
  EXPECT_EQ(cells.size(), 5u);
}

}  // namespace
}  // namespace am
