#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "atomics/primitives.hpp"

namespace am {
namespace {

TEST(Primitives, Names) {
  EXPECT_STREQ(to_string(Primitive::kFaa), "FAA");
  EXPECT_STREQ(to_string(Primitive::kCasLoop), "CASLOOP");
  EXPECT_EQ(parse_primitive("CAS"), Primitive::kCas);
  EXPECT_EQ(parse_primitive("SWP"), Primitive::kSwap);
  EXPECT_EQ(parse_primitive("bogus"), std::nullopt);
  EXPECT_EQ(all_primitives().size(), 7u);
}

TEST(Primitives, Classification) {
  EXPECT_FALSE(needs_exclusive(Primitive::kLoad));
  EXPECT_TRUE(needs_exclusive(Primitive::kStore));
  EXPECT_TRUE(needs_exclusive(Primitive::kCas));
  EXPECT_FALSE(is_rmw(Primitive::kLoad));
  EXPECT_FALSE(is_rmw(Primitive::kStore));
  EXPECT_TRUE(is_rmw(Primitive::kFaa));
  EXPECT_TRUE(can_fail(Primitive::kCas));
  EXPECT_FALSE(can_fail(Primitive::kCasLoop));
}

TEST(Execute, LoadObservesValue) {
  std::atomic<std::uint64_t> cell{17};
  OpContext ctx;
  const OpResult r = execute(Primitive::kLoad, cell, ctx);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.observed, 17u);
  EXPECT_EQ(ctx.expected, 17u);  // load refreshes the CAS expectation
}

TEST(Execute, StoreWritesContextValue) {
  std::atomic<std::uint64_t> cell{0};
  OpContext ctx;
  ctx.store_value = 99;
  execute(Primitive::kStore, cell, ctx);
  EXPECT_EQ(cell.load(), 99u);
}

TEST(Execute, SwapReturnsOld) {
  std::atomic<std::uint64_t> cell{5};
  OpContext ctx;
  ctx.store_value = 11;
  const OpResult r = execute(Primitive::kSwap, cell, ctx);
  EXPECT_EQ(r.observed, 5u);
  EXPECT_EQ(cell.load(), 11u);
}

TEST(Execute, TasSemantics) {
  std::atomic<std::uint64_t> cell{0};
  OpContext ctx;
  const OpResult first = execute(Primitive::kTas, cell, ctx);
  EXPECT_TRUE(first.success);
  EXPECT_EQ(first.observed, 0u);
  const OpResult second = execute(Primitive::kTas, cell, ctx);
  EXPECT_FALSE(second.success);
  EXPECT_EQ(second.observed, 1u);
  EXPECT_EQ(cell.load(), 1u);
}

TEST(Execute, FaaIncrements) {
  std::atomic<std::uint64_t> cell{10};
  OpContext ctx;
  const OpResult r = execute(Primitive::kFaa, cell, ctx);
  EXPECT_EQ(r.observed, 10u);
  EXPECT_EQ(cell.load(), 11u);
  EXPECT_EQ(ctx.expected, 11u);
}

TEST(Execute, CasSucceedsWithFreshExpectation) {
  std::atomic<std::uint64_t> cell{0};
  OpContext ctx;  // expected defaults to 0 == cell
  const OpResult r = execute(Primitive::kCas, cell, ctx);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(cell.load(), 1u);
  EXPECT_EQ(ctx.expected, 1u);
}

TEST(Execute, CasFailureRefreshesExpectation) {
  std::atomic<std::uint64_t> cell{5};
  OpContext ctx;  // expected 0 != 5
  const OpResult r = execute(Primitive::kCas, cell, ctx);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(cell.load(), 5u);         // failed CAS writes nothing
  EXPECT_EQ(ctx.expected, 5u);        // but refreshes the expectation
  const OpResult retry = execute(Primitive::kCas, cell, ctx);
  EXPECT_TRUE(retry.success);
  EXPECT_EQ(cell.load(), 6u);
}

TEST(Execute, CasDesiredOverride) {
  std::atomic<std::uint64_t> cell{3};
  OpContext ctx;
  ctx.expected = 3;
  ctx.cas_desired = 0;  // pointer-style: swing 3 -> 0
  const OpResult r = execute(Primitive::kCas, cell, ctx);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(cell.load(), 0u);
}

TEST(Execute, CasLoopAlwaysCompletes) {
  std::atomic<std::uint64_t> cell{41};
  OpContext ctx;
  const OpResult r = execute(Primitive::kCasLoop, cell, ctx);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.observed, 41u);
  EXPECT_EQ(cell.load(), 42u);
  EXPECT_GE(r.attempts, 1u);
}

TEST(ExecuteConcurrent, FaaCountsExactly) {
  // Correctness of the primitive layer under real concurrency: N threads x
  // K increments leave exactly N*K on the cell.
  constexpr int kThreads = 4;
  constexpr int kIters = 10'000;
  std::atomic<std::uint64_t> cell{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cell] {
      OpContext ctx;
      for (int i = 0; i < kIters; ++i) execute(Primitive::kFaa, cell, ctx);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(cell.load(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ExecuteConcurrent, CasLoopCountsExactly) {
  constexpr int kThreads = 4;
  constexpr int kIters = 5'000;
  std::atomic<std::uint64_t> cell{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cell] {
      OpContext ctx;
      for (int i = 0; i < kIters; ++i) execute(Primitive::kCasLoop, cell, ctx);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(cell.load(), static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace am
