#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "lockfree/treiber_stack.hpp"

namespace am::lockfree {
namespace {

TEST(Tagged, PackingRoundTrips) {
  const TaggedIndex t = make_tagged(42, 7);
  EXPECT_EQ(index_of(t), 42u);
  EXPECT_EQ(tag_of(t), 7u);
  EXPECT_FALSE(is_null(t));
  EXPECT_TRUE(is_null(kNullTagged));
  const TaggedIndex r = retag(t, 13);
  EXPECT_EQ(index_of(r), 13u);
  EXPECT_EQ(tag_of(r), 8u);
}

TEST(TreiberStack, LifoSingleThread) {
  TreiberStack<int> s(8);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.push(1));
  EXPECT_TRUE(s.push(2));
  EXPECT_TRUE(s.push(3));
  EXPECT_EQ(s.pop(), 3);
  EXPECT_EQ(s.pop(), 2);
  EXPECT_TRUE(s.push(4));
  EXPECT_EQ(s.pop(), 4);
  EXPECT_EQ(s.pop(), 1);
  EXPECT_EQ(s.pop(), std::nullopt);
  EXPECT_TRUE(s.empty());
}

TEST(TreiberStack, PoolExhaustionAndReuse) {
  TreiberStack<int> s(2);
  EXPECT_TRUE(s.push(1));
  EXPECT_TRUE(s.push(2));
  EXPECT_FALSE(s.push(3));  // pool exhausted
  EXPECT_EQ(s.pop(), 2);
  EXPECT_TRUE(s.push(4));   // node recycled
  EXPECT_EQ(s.pop(), 4);
  EXPECT_EQ(s.pop(), 1);
}

TEST(TreiberStack, ZeroCapacity) {
  TreiberStack<int> s(0);
  EXPECT_FALSE(s.push(1));
  EXPECT_EQ(s.pop(), std::nullopt);
}

TEST(TreiberStack, ElementConservationUnderConcurrency) {
  // Each thread pushes a disjoint range, then everything is popped; the
  // multiset of popped values must equal the multiset pushed.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5'000;
  TreiberStack<int> s(kThreads * kPerThread);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&s, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(s.push(t * kPerThread + i));
      }
    });
  }
  for (auto& th : threads) th.join();

  std::set<int> seen;
  while (auto v = s.pop()) {
    EXPECT_TRUE(seen.insert(*v).second) << "duplicate " << *v;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(TreiberStack, ConcurrentPushPopKeepsBalance) {
  // Mixed pushers/poppers: total pushes == total pops + residue.
  constexpr int kThreads = 4;
  constexpr int kIters = 10'000;
  TreiberStack<long> s(kThreads * 4);
  std::atomic<long> pushed{0};
  std::atomic<long> popped{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        if (s.push(i)) pushed.fetch_add(1, std::memory_order_relaxed);
        if (s.pop()) popped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  long residue = 0;
  while (s.pop()) ++residue;
  EXPECT_EQ(pushed.load(), popped.load() + residue);
}

}  // namespace
}  // namespace am::lockfree
