// The Treiber stack protocol on the coherence machine: structural
// correctness (the head word and node links stay consistent) and the
// expected contention behaviour.
#include <gtest/gtest.h>

#include "lockfree/stack_program.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"

namespace am::lockfree {
namespace {

TEST(StackProgram, SingleCoreAlternatesPushPop) {
  sim::MachineConfig cfg = sim::test_machine(2);
  cfg.paranoid_checks = true;
  sim::Machine m(cfg);
  TreiberStackProgram prog(/*work=*/50);
  const sim::RunStats st = m.run(prog, 1, 0, 100'000);
  const std::uint64_t ops = TreiberStackProgram::completed_ops(st);
  EXPECT_GT(ops, 100u);
  // Alternating push/pop from one core: the stack ends empty or holding
  // exactly the in-flight node; head index is 0 or the core's node.
  const std::uint64_t head = m.line_value(TreiberStackProgram::kHeadLine);
  EXPECT_LE(TreiberStackProgram::index_of(head), 1u);
  // Tag counts successful CASes on the head.
  EXPECT_EQ(TreiberStackProgram::tag_of(head), ops);
}

TEST(StackProgram, ManyCoresConserveNodes) {
  sim::MachineConfig cfg = sim::test_machine(8);
  cfg.paranoid_checks = true;
  sim::Machine m(cfg, 3);
  TreiberStackProgram prog(0);
  const sim::RunStats st = m.run(prog, 8, 0, 200'000);
  EXPECT_GT(TreiberStackProgram::completed_ops(st), 100u);

  // Walk the stack from the head: every linked node index is one of the 8
  // per-core nodes, with no cycles (ABA tags prevent them).
  std::uint64_t head = m.line_value(TreiberStackProgram::kHeadLine);
  std::set<std::uint64_t> visited;
  std::uint64_t idx = TreiberStackProgram::index_of(head);
  while (idx != 0) {
    ASSERT_LE(idx, 8u) << "corrupt node index";
    ASSERT_TRUE(visited.insert(idx).second) << "cycle in stack links";
    const std::uint64_t next =
        m.line_value(TreiberStackProgram::kNodeBase + idx);
    idx = TreiberStackProgram::index_of(next);
  }
  EXPECT_LE(visited.size(), 8u);
}

TEST(StackProgram, ThroughputDegradesWithCoresLikeCasLoop) {
  // The stack's hot head makes it a CAS-loop workload: completed ops/cycle
  // must *fall* as cores are added (the paper's design lesson).
  double prev = 1e300;
  for (sim::CoreId n : {1u, 2u, 4u, 8u}) {
    sim::Machine m(sim::test_machine(8), 7);
    TreiberStackProgram prog(0);
    const sim::RunStats st = m.run(prog, n, 20'000, 200'000);
    const double x = static_cast<double>(TreiberStackProgram::completed_ops(st)) /
                     static_cast<double>(st.measured_cycles);
    if (n > 1) {
      EXPECT_LT(x, prev * 1.05) << "n=" << n;
    }
    prev = x;
  }
}

TEST(StackProgram, WorkRelievesHeadContention) {
  sim::MachineConfig cfg = sim::test_machine(8);
  auto run_with_work = [&](sim::Cycles w) {
    sim::Machine m(cfg, 11);
    TreiberStackProgram prog(w);
    const sim::RunStats st = m.run(prog, 8, 20'000, 200'000);
    const double ops = static_cast<double>(TreiberStackProgram::completed_ops(st));
    // Attempt efficiency: completed CAS / all CAS.
    std::uint64_t cas_ops = 0;
    for (const auto& t : st.threads) {
      cas_ops += t.ops_by_prim[static_cast<std::size_t>(Primitive::kCas)];
    }
    return ops / static_cast<double>(cas_ops);
  };
  EXPECT_GT(run_with_work(4'000), run_with_work(0));
}

}  // namespace
}  // namespace am::lockfree
