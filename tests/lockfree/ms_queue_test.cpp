#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "lockfree/ms_queue.hpp"

namespace am::lockfree {
namespace {

TEST(MsQueue, FifoSingleThread) {
  MichaelScottQueue<int> q(8);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.enqueue(1));
  EXPECT_TRUE(q.enqueue(2));
  EXPECT_TRUE(q.enqueue(3));
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.dequeue(), 1);
  EXPECT_EQ(q.dequeue(), 2);
  EXPECT_TRUE(q.enqueue(4));
  EXPECT_EQ(q.dequeue(), 3);
  EXPECT_EQ(q.dequeue(), 4);
  EXPECT_EQ(q.dequeue(), std::nullopt);
  EXPECT_TRUE(q.empty());
}

TEST(MsQueue, CapacityAndRecycling) {
  MichaelScottQueue<int> q(2);
  EXPECT_TRUE(q.enqueue(1));
  EXPECT_TRUE(q.enqueue(2));
  EXPECT_FALSE(q.enqueue(3));  // pool exhausted
  EXPECT_EQ(q.dequeue(), 1);
  EXPECT_TRUE(q.enqueue(4));   // dummy recycled
  EXPECT_EQ(q.dequeue(), 2);
  EXPECT_EQ(q.dequeue(), 4);
}

TEST(MsQueue, SingleProducerSingleConsumerOrder) {
  MichaelScottQueue<int> q(64);
  constexpr int kItems = 50'000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      while (!q.enqueue(i)) {
      }
    }
  });
  int expected = 0;
  while (expected < kItems) {
    if (auto v = q.dequeue()) {
      ASSERT_EQ(*v, expected);  // FIFO order for a single producer
      ++expected;
    }
  }
  producer.join();
}

TEST(MsQueue, ElementConservationManyProducersManyConsumers) {
  constexpr int kThreads = 2;
  constexpr int kPerThread = 10'000;
  MichaelScottQueue<int> q(256);
  std::atomic<int> consumed{0};
  std::set<int> seen;
  std::mutex seen_mu;

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int v = t * kPerThread + i;
        while (!q.enqueue(v)) {
        }
      }
    });
    workers.emplace_back([&] {
      std::set<int> local;
      while (consumed.load(std::memory_order_relaxed) <
             kThreads * kPerThread) {
        if (auto v = q.dequeue()) {
          local.insert(*v);
          consumed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(seen_mu);
      seen.merge(local);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace am::lockfree
