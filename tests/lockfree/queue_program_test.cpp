// The Michael-Scott queue protocol on the coherence machine.
#include <gtest/gtest.h>

#include "lockfree/queue_program.hpp"
#include "lockfree/stack_program.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"

namespace am::lockfree {
namespace {

TEST(QueueProgram, SingleCoreMakesProgress) {
  sim::MachineConfig cfg = sim::test_machine(2);
  cfg.paranoid_checks = true;
  sim::Machine m(cfg);
  MsQueueProgram prog(/*work=*/50);
  m.run(prog, 1, 0, 150'000);
  EXPECT_GT(prog.total_completions(), 100u);
}

TEST(QueueProgram, ManyCoresBalancedAndConsistent) {
  sim::MachineConfig cfg = sim::test_machine(8);
  cfg.paranoid_checks = true;
  sim::Machine m(cfg, 5);
  MsQueueProgram prog(0);
  m.run(prog, 8, 0, 300'000);
  EXPECT_GT(prog.total_completions(), 100u);

  // Queue structural check: walking next-links from the head's dummy stays
  // inside the node universe and terminates (tags prevent cycles).
  std::uint64_t head = m.line_value(MsQueueProgram::kHeadLine);
  std::uint64_t idx = MsQueueProgram::index_of(head);
  int steps = 0;
  while (idx != 0 && steps <= 16) {
    ASSERT_TRUE(idx <= 8 || idx == 0xfff) << "corrupt node index " << idx;
    const std::uint64_t next =
        m.line_value(MsQueueProgram::kNodeBase + idx);
    idx = MsQueueProgram::index_of(next);
    ++steps;
  }
  EXPECT_LE(steps, 10) << "cycle or runaway in queue links";
}

TEST(QueueProgram, TwoHotWordsBeatOneUnderMix) {
  // Balanced enqueue/dequeue vs the stack's push/pop at the same thread
  // count: the queue's head/tail split must win.
  sim::MachineConfig cfg = sim::test_machine(8);
  sim::Machine mq(cfg, 9);
  MsQueueProgram queue(0);
  mq.run(queue, 8, 0, 300'000);

  sim::Machine ms(cfg, 9);
  TreiberStackProgram stack(0);
  const sim::RunStats st = ms.run(stack, 8, 0, 300'000);

  EXPECT_GT(queue.total_completions(),
            TreiberStackProgram::completed_ops(st));
}

TEST(QueueProgram, DeterministicUnderFifo) {
  auto run_once = [] {
    sim::Machine m(sim::test_machine(4), 3);
    MsQueueProgram prog(20);
    m.run(prog, 4, 0, 100'000);
    return prog.total_completions();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace am::lockfree
