// Mutual-exclusion correctness of the hardware lock implementations under
// real threads (oversubscribed on small hosts, which only makes the test
// harsher).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "locks/spinlocks.hpp"

namespace am::locks {
namespace {

/// Oversubscribed spinlocks cost a scheduler quantum per hand-off, so the
/// iteration count scales with the cores actually available.
inline int scaled_iters() {
  return std::thread::hardware_concurrency() >= 4 ? 20'000 : 500;
}

template <typename Lock>
void exercise_mutual_exclusion() {
  Lock lock;
  constexpr int kThreads = 4;
  const int kIters = scaled_iters();
  // Non-atomic counter: only mutual exclusion keeps this race-free.
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        LockGuard<Lock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(TasLock, MutualExclusion) { exercise_mutual_exclusion<TasLock>(); }
TEST(TtasLock, MutualExclusion) { exercise_mutual_exclusion<TtasLock>(); }
TEST(BackoffTtasLock, MutualExclusion) {
  exercise_mutual_exclusion<BackoffTtasLock>();
}
TEST(TicketLock, MutualExclusion) { exercise_mutual_exclusion<TicketLock>(); }

TEST(McsLock, MutualExclusion) {
  McsLock lock;
  constexpr int kThreads = 4;
  const int kIters = scaled_iters();
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      McsLock::Node node;
      for (int i = 0; i < kIters; ++i) {
        lock.lock(node);
        ++counter;
        lock.unlock(node);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(TasLock, TryLockSemantics) {
  TasLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(TtasLock, TryLockSemantics) {
  TtasLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
}

TEST(TicketLock, TryLockSemantics) {
  TicketLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(McsLock, UncontendedLockUnlock) {
  McsLock lock;
  McsLock::Node node;
  lock.lock(node);
  lock.unlock(node);
  lock.lock(node);
  lock.unlock(node);
  SUCCEED();
}

}  // namespace
}  // namespace am::locks
