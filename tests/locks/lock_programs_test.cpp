// Lock protocols on the coherence machine: mutual exclusion (checked via
// the data counter), progress, fairness properties, and the expected
// performance ordering.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "locks/lock_programs.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"

namespace am::locks {
namespace {

LockWorkload counting_workload() {
  LockWorkload wl;
  wl.critical_work = 50;
  wl.outside_work = 100;
  wl.cs_data_ops = 1;  // one FAA on the data line per critical section
  return wl;
}

template <typename Program>
sim::RunStats run_lock(const LockWorkload& wl, sim::CoreId threads,
                       sim::MachineConfig cfg = sim::test_machine(8),
                       sim::Cycles measure = 400'000) {
  sim::Machine machine(std::move(cfg));
  Program prog(wl);
  // No warmup: the data-line count must equal total acquisitions.
  return machine.run(prog, threads, 0, measure);
}

template <typename Program>
void expect_counter_matches_acquisitions(LockKind kind) {
  sim::Machine machine(sim::test_machine(8));
  Program prog(counting_workload());
  const sim::RunStats st = machine.run(prog, 6, 0, 300'000);
  const std::uint64_t acq = LockProgramBase::acquisitions(st, kind);
  EXPECT_GT(acq, 50u) << "lock made too little progress";
  // Every completed critical section did exactly one FAA on the data line,
  // so the data counter equals the number of critical sections — the
  // mutual-exclusion check. (For the ticket lock the protocol itself also
  // issues FAAs, on the ticket line, so compare against acquisitions.)
  const std::uint64_t data_value = machine.line_value(kDataLine);
  EXPECT_NEAR(static_cast<double>(acq), static_cast<double>(data_value),
              static_cast<double>(st.threads.size()) + 1.0);
  if (kind != LockKind::kTicket) {
    const std::uint64_t faa_ops = [&] {
      std::uint64_t n = 0;
      for (const auto& t : st.threads) {
        n += t.ops_by_prim[static_cast<std::size_t>(Primitive::kFaa)];
      }
      return n;
    }();
    EXPECT_EQ(data_value, faa_ops);
  }
}

TEST(TasLockSim, CountsAreConsistent) {
  expect_counter_matches_acquisitions<TasLockProgram>(LockKind::kTas);
}
TEST(TtasLockSim, CountsAreConsistent) {
  expect_counter_matches_acquisitions<TtasLockProgram>(LockKind::kTtas);
}
TEST(TicketLockSim, CountsAreConsistent) {
  expect_counter_matches_acquisitions<TicketLockProgram>(LockKind::kTicket);
}
TEST(McsLockSim, CountsAreConsistent) {
  expect_counter_matches_acquisitions<McsLockProgram>(LockKind::kMcs);
}

TEST(TicketLockSim, PerfectlyFair) {
  // Ticket ordering is FIFO by construction: per-core acquisition counts
  // differ by at most one full rotation.
  LockWorkload wl;
  wl.critical_work = 50;
  wl.outside_work = 50;
  sim::Machine machine(sim::test_machine(8));
  TicketLockProgram prog(wl);
  const sim::RunStats st = machine.run(prog, 8, 50'000, 400'000);
  const auto shares = LockProgramBase::acquisition_shares(st, LockKind::kTicket);
  EXPECT_GT(am::jain_fairness(shares), 0.99);
}

TEST(McsLockSim, FairAndScalable) {
  LockWorkload wl;
  wl.critical_work = 50;
  wl.outside_work = 50;
  sim::Machine machine(sim::test_machine(8));
  McsLockProgram prog(wl);
  const sim::RunStats st = machine.run(prog, 8, 50'000, 400'000);
  const auto shares = LockProgramBase::acquisition_shares(st, LockKind::kMcs);
  EXPECT_GT(am::jain_fairness(shares), 0.95);
  EXPECT_GT(LockProgramBase::acquisitions(st, LockKind::kMcs), 100u);
}

TEST(Ordering, TasDegradesWorstUnderContention) {
  // The classic result the model explains: with many contenders, TAS's
  // useless exchanges delay the release; queue-based locks do better. (At
  // small core counts TTAS's post-release burst makes TAS vs TTAS a wash,
  // so the hard ordering claims are against MCS/ticket.)
  LockWorkload wl;
  wl.critical_work = 50;
  wl.outside_work = 0;
  const auto tas = run_lock<TasLockProgram>(wl, 8);
  const auto ttas = run_lock<TtasLockProgram>(wl, 8);
  const auto mcs = run_lock<McsLockProgram>(wl, 8);
  const auto ticket = run_lock<TicketLockProgram>(wl, 8);
  const auto a_tas = LockProgramBase::acquisitions(tas, LockKind::kTas);
  const auto a_ttas = LockProgramBase::acquisitions(ttas, LockKind::kTtas);
  const auto a_mcs = LockProgramBase::acquisitions(mcs, LockKind::kMcs);
  const auto a_ticket =
      LockProgramBase::acquisitions(ticket, LockKind::kTicket);
  EXPECT_GT(a_mcs, a_tas);
  EXPECT_GT(a_ticket, a_tas);
  EXPECT_GT(a_ttas, a_tas / 2);  // TTAS within 2x either way of TAS
  EXPECT_LT(a_ttas, a_tas * 3);
}

TEST(Progress, AllProtocolsKeepWorkingAcrossThreadCounts) {
  LockWorkload wl;
  wl.critical_work = 20;
  wl.outside_work = 40;
  for (sim::CoreId n : {1u, 2u, 5u, 8u}) {
    EXPECT_GT(LockProgramBase::acquisitions(
                  run_lock<TasLockProgram>(wl, n), LockKind::kTas),
              10u) << "TAS n=" << n;
    EXPECT_GT(LockProgramBase::acquisitions(
                  run_lock<TtasLockProgram>(wl, n), LockKind::kTtas),
              10u) << "TTAS n=" << n;
    EXPECT_GT(LockProgramBase::acquisitions(
                  run_lock<TicketLockProgram>(wl, n), LockKind::kTicket),
              10u) << "ticket n=" << n;
    EXPECT_GT(LockProgramBase::acquisitions(
                  run_lock<McsLockProgram>(wl, n), LockKind::kMcs),
              10u) << "MCS n=" << n;
  }
}

TEST(Names, LockKindStrings) {
  EXPECT_STREQ(to_string(LockKind::kTas), "TAS");
  EXPECT_STREQ(to_string(LockKind::kTtas), "TTAS");
  EXPECT_STREQ(to_string(LockKind::kTicket), "ticket");
  EXPECT_STREQ(to_string(LockKind::kMcs), "MCS");
}

}  // namespace
}  // namespace am::locks
