#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "locks/counters.hpp"

namespace am::locks {
namespace {

template <typename Counter>
void exercise_counter() {
  Counter counter;
  constexpr int kThreads = 4;
  // Lock-based counters cost a scheduler quantum per hand-off when
  // oversubscribed; scale to the host.
  const int kIters =
      std::thread::hardware_concurrency() >= 4 ? 20'000 : 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) counter.increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.read(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(FaaCounter, ExactUnderConcurrency) { exercise_counter<FaaCounter>(); }
TEST(CasLoopCounter, ExactUnderConcurrency) {
  exercise_counter<CasLoopCounter>();
}
TEST(LockedCounterTas, ExactUnderConcurrency) {
  exercise_counter<LockedCounter<TasLock>>();
}
TEST(LockedCounterTicket, ExactUnderConcurrency) {
  exercise_counter<LockedCounter<TicketLock>>();
}

TEST(Counters, IncrementReturnsPreviousValue) {
  FaaCounter faa;
  EXPECT_EQ(faa.increment(), 0u);
  EXPECT_EQ(faa.increment(), 1u);
  CasLoopCounter loop;
  EXPECT_EQ(loop.increment(), 0u);
  EXPECT_EQ(loop.increment(), 1u);
  LockedCounter<TasLock> locked;
  EXPECT_EQ(locked.increment(), 0u);
  EXPECT_EQ(locked.increment(), 1u);
}

TEST(ShardedCounter, ExactUnderConcurrency) {
  ShardedCounter counter(4);
  constexpr int kThreads = 4;
  const int kIters =
      std::thread::hardware_concurrency() >= 4 ? 20'000 : 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter.increment(static_cast<std::size_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.read(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ShardedCounter, SlotWrapsAroundShardCount) {
  ShardedCounter counter(2);
  counter.increment(0);
  counter.increment(2);  // same shard as slot 0
  counter.increment(5);  // shard 1
  EXPECT_EQ(counter.read(), 3u);
  EXPECT_EQ(counter.shards(), 2u);
}

TEST(ShardedCounter, ZeroShardsClampedToOne) {
  ShardedCounter counter(0);
  counter.increment(7);
  EXPECT_EQ(counter.read(), 1u);
  EXPECT_EQ(counter.shards(), 1u);
}

TEST(Counters, Names) {
  EXPECT_STREQ(FaaCounter::name(), "faa");
  EXPECT_STREQ(CasLoopCounter::name(), "cas-loop");
  EXPECT_STREQ(LockedCounter<>::name(), "locked");
}

}  // namespace
}  // namespace am::locks
